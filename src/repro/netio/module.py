"""The network I/O module: the kernel-resident half of the design.

One module per host-network interface (paper §3.3).  It provides:

* **Protected transmission** — libraries enter through a specialized
  trap; the module verifies the packet against the header template
  bound to the channel's capability before it touches the wire.
* **Protected input delivery** — software demux (synthesized or
  interpreted, per configuration) on Ethernet; hardware BQI rings on
  AN1.  Matched packets land in the channel's shared region and the
  library is signalled through the lightweight semaphore, with
  batching.
* **Channel setup** — privileged-only: creating a channel maps and
  wires the shared region, installs the demux filter or allocates the
  BQI ring, and registers the send template.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from ..mach.kernel import Kernel
from ..mach.task import Task
from ..mach.vm import SharedRegion, vm_map, vm_wire
from ..net.headers import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    An1Header,
    EthernetHeader,
    HeaderError,
)
from ..net.nic.an1ctrl import An1Nic, BufferRing
from ..net.nic.base import Nic
from ..net.nic.pmadd import PmaddNic
from .channels import Channel
from .pktfilter import (
    CompiledDemux,
    FilterProgram,
    compile_tcp_demux,
    compile_udp_demux,
    tcp_filter_program,
    udp_filter_program,
)
from .template import HeaderTemplate, TemplateViolation


class SecurityViolation(Exception):
    """An unprivileged or unauthorized operation was refused."""


from dataclasses import dataclass


@dataclass(frozen=True)
class LinkInfo:
    """Link-level facts about a received frame the kernel may need:
    the source address, and (on AN1) the BQI the sender stamped —
    that is how registries exchange BQIs during connection setup."""

    src: object
    bqi: int = 0
    adv_bqi: int = 0


#: Kernel-side consumer for packets no channel claims (the monolithic
#: stack, the registry server's handshake path, ARP).  Called as a
#: generator with (ethertype, payload, link_info).
KernelRx = Callable[[int, bytes, LinkInfo], Generator]

DemuxStyle = str  # "synthesized" | "cspf" | "bpf"


class NetworkIoModule:
    """Kernel service co-located with one device driver."""

    DEFAULT_REGION_SIZE = 64 * 1024
    DEFAULT_RING_CAPACITY = 32

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        demux_style: DemuxStyle = "synthesized",
        name: str = "",
        batching: bool = True,
    ) -> None:
        if demux_style not in ("synthesized", "cspf", "bpf"):
            raise ValueError(f"unknown demux style {demux_style!r}")
        self.kernel = kernel
        self.nic = nic
        self.batching = batching
        self.demux_style = demux_style
        self.name = name or f"netio-{nic.name}"
        self.channels: list[Channel] = []
        self.kernel_rx: Optional[KernelRx] = None
        kernel.register_device(self.name, self)
        nic.rx_handler = self._rx_handler
        if isinstance(nic, An1Nic) and 0 not in nic.bqi_table:
            nic.install_default_ring()
        self.stats = {
            "tx": 0,
            "tx_refused": 0,
            "rx_demuxed": 0,
            "rx_to_kernel": 0,
            "rx_dropped": 0,
            "signals_charged": 0,
        }

    @property
    def is_an1(self) -> bool:
        return isinstance(self.nic, An1Nic)

    # ------------------------------------------------------------------
    # Channel setup (privileged)
    # ------------------------------------------------------------------

    def create_channel(
        self,
        caller: Task,
        owner: Task,
        template: HeaderTemplate,
        local_ip: int = 0,
        local_port: int = 0,
        remote_ip: int = 0,
        remote_port: int = 0,
        link_dst: object = None,
        peer_bqi: int = 0,
        region_size: int = DEFAULT_REGION_SIZE,
        install_demux: bool = True,
        ring: Optional[BufferRing] = None,
        protocol: str = "tcp",
        with_link_info: bool = False,
    ) -> Generator:
        """Create a protected channel for ``owner``.

        Only privileged tasks (the registry server) may call this; the
        checks are what keeps untrusted libraries from granting
        themselves network access.  Returns the new :class:`Channel`.
        """
        if not caller.privileged:
            raise SecurityViolation(
                f"task {caller.name!r} may not create channels"
            )
        costs = self.kernel.costs
        # Shared, pinned packet-buffer region mapped into the library.
        region = SharedRegion(self.kernel, region_size)
        region.mapped.add(owner)
        yield from self.kernel.cpu.consume(costs.vm_map_region)
        yield from vm_wire(self.kernel, region)

        demux: Union[FilterProgram, CompiledDemux, None] = None
        if install_demux:
            if self.is_an1:
                if ring is None:
                    ring = self.nic.allocate_bqi(
                        capacity=self.DEFAULT_RING_CAPACITY
                    )
                    yield from self.kernel.cpu.consume(costs.bqi_setup)
            else:
                if protocol == "udp":
                    if self.demux_style == "synthesized":
                        demux = compile_udp_demux(local_ip, local_port)
                    else:
                        demux = udp_filter_program(local_ip, local_port)
                elif self.demux_style == "synthesized":
                    demux = compile_tcp_demux(
                        local_ip, local_port, remote_ip, remote_port
                    )
                else:
                    demux = tcp_filter_program(
                        local_ip, local_port, remote_ip, remote_port
                    )

        channel = Channel(
            owner=owner,
            template=template,
            region=region,
            demux_filter=demux,
            ring=ring,
            name=f"{owner.name}:{local_port}",
            batching=self.batching,
            with_link_info=with_link_info,
        )
        channel.link_dst = link_dst
        channel.peer_bqi = peer_bqi
        if ring is not None:
            ring.owner = channel
        self.channels.append(channel)
        return channel

    def destroy_channel(self, caller: Task, channel: Channel) -> None:
        """Tear a channel down (privileged, or the owner itself)."""
        if not caller.privileged and caller is not channel.owner:
            raise SecurityViolation(
                f"task {caller.name!r} may not destroy {channel.name}"
            )
        if channel in self.channels:
            self.channels.remove(channel)
        if channel.ring is not None and self.is_an1:
            self.nic.release_bqi(channel.ring.bqi)
        channel.close()

    def set_peer_bqi(self, caller: Task, channel: Channel, bqi: int) -> None:
        """Record the BQI the remote side told us to stamp on packets."""
        if not caller.privileged:
            raise SecurityViolation("only the registry may set peer BQIs")
        channel.peer_bqi = bqi

    def allocate_ring(self, caller: Task, capacity: int = DEFAULT_RING_CAPACITY):
        """Pre-allocate a BQI ring before the handshake (privileged).

        The registry needs the index *before* sending the SYN so the
        remote side can be told which BQI to use; the ring is later
        bound to the channel at create_channel(ring=...)."""
        if not caller.privileged:
            raise SecurityViolation("only the registry may allocate rings")
        if not self.is_an1:
            return None
        return self.nic.allocate_bqi(capacity=capacity)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def send(
        self,
        task: Task,
        channel: Channel,
        ip_packet: bytes,
        link_dst: object = None,
        bqi: Optional[int] = None,
        adv_bqi: int = 0,
    ) -> Generator:
        """Library data path: trap, template check, transmit.

        The packet already sits in the shared region (no copy); the
        module charges the specialized trap and the template match,
        builds the link header, and hands the frame to the device.

        Connectionless libraries pass ``link_dst``/``bqi`` per datagram
        (the template still pins the IP source, so varying the link
        destination grants no impersonation power); ``adv_bqi``
        advertises the sender's own ring for peer BQI discovery.
        """
        costs = self.kernel.costs
        yield from self.kernel.fast_trap()
        if channel.closed or channel not in self.channels:
            raise SecurityViolation(f"channel {channel.name} is not active")
        if task is not channel.owner:
            self.stats["tx_refused"] += 1
            raise SecurityViolation(
                f"task {task.name!r} does not own channel {channel.name}"
            )
        yield from self.kernel.cpu.consume(costs.template_check)
        try:
            channel.template.verify(ip_packet)
        except TemplateViolation:
            self.stats["tx_refused"] += 1
            raise
        channel.stats["tx_packets"] += 1
        self.stats["tx"] += 1
        frame = self._encapsulate(
            ip_packet,
            channel.link_dst if link_dst is None else link_dst,
            channel.peer_bqi if bqi is None else bqi,
            adv_bqi=adv_bqi,
        )
        yield from self.nic.driver_transmit(frame)

    def kernel_send(
        self,
        payload: bytes,
        link_dst: object,
        ethertype: int = ETHERTYPE_IP,
        bqi: int = 0,
        adv_bqi: int = 0,
    ) -> Generator:
        """Trusted in-kernel transmission (monolithic stacks, registry,
        ARP).  No trap, no template."""
        self.stats["tx"] += 1
        frame = self._encapsulate(payload, link_dst, bqi, ethertype, adv_bqi)
        yield from self.nic.driver_transmit(frame)

    def _encapsulate(
        self,
        payload: bytes,
        link_dst: object,
        bqi: int,
        ethertype: int = ETHERTYPE_IP,
        adv_bqi: int = 0,
    ) -> bytes:
        if link_dst is None:
            raise ValueError("channel has no link destination")
        if self.is_an1:
            header = An1Header(
                dst=link_dst,
                src=self.nic.station,
                ethertype=ethertype,
                bqi=bqi,
                adv_bqi=adv_bqi,
            )
        else:
            header = EthernetHeader(link_dst, self.nic.mac, ethertype)
        return header.pack() + payload

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def _rx_handler(self, frame: bytes, context: object) -> Generator:
        costs = self.kernel.costs
        if self.is_an1:
            yield from self.kernel.cpu.consume(costs.an1_bqi_bookkeeping)
            ring = context
            owner = getattr(ring, "owner", None)
            if isinstance(owner, Channel):
                # Hardware demuxed straight to the channel's ring.
                header = An1Header.unpack(frame)
                payload = frame[An1Header.LENGTH :]
                yield from self._deliver(
                    owner,
                    payload,
                    LinkInfo(header.src, header.bqi, header.adv_bqi),
                )
                return
            header = An1Header.unpack(frame)
            yield from self._to_kernel(
                header.ethertype,
                frame[An1Header.LENGTH :],
                LinkInfo(header.src, header.bqi, header.adv_bqi),
            )
            # The kernel's (or an unowned) ring lent the buffer; hand
            # it back once the kernel path has consumed the packet.
            if ring is not None and not isinstance(owner, Channel):
                ring.replenish(1)
            return

        # Ethernet: software demultiplexing over the whole frame.
        # Wire input is untrusted: a truncated frame must be dropped,
        # never allowed to kill the interrupt path with an exception.
        try:
            header = EthernetHeader.unpack(frame)
        except HeaderError:
            self.stats["rx_dropped"] += 1
            return
        if header.ethertype != ETHERTYPE_IP:
            # Non-IP (ARP) goes straight to the kernel consumer.
            yield from self._to_kernel(
                header.ethertype,
                frame[EthernetHeader.LENGTH :],
                LinkInfo(header.src),
            )
            return
        matched = None
        if self.demux_style == "synthesized":
            # One synthesized dispatch covers the lookup (Table 5).
            yield from self.kernel.cpu.consume(costs.sw_demux)
            for channel in self.channels:
                if channel.demux_filter is not None and channel.demux_filter.run(frame):
                    matched = channel
                    break
        else:
            bpf = self.demux_style == "bpf"
            for channel in self.channels:
                demux_filter = channel.demux_filter
                if demux_filter is None:
                    continue
                yield from self.kernel.cpu.consume(
                    demux_filter.interpretation_cost(costs, bpf_style=bpf)
                )
                if demux_filter.run(frame):
                    matched = channel
                    break
        if matched is not None:
            yield from self._deliver(
                matched, frame[EthernetHeader.LENGTH :], LinkInfo(header.src)
            )
        else:
            yield from self._to_kernel(
                ETHERTYPE_IP, frame[EthernetHeader.LENGTH :], LinkInfo(header.src)
            )

    def _deliver(
        self, channel: Channel, payload: bytes, link_info: Optional[LinkInfo] = None
    ) -> Generator:
        self.stats["rx_demuxed"] += 1
        if not self.is_an1:
            # Ethernet-only: the staging/placement premium of user-level
            # delivery without hardware demux (see costs.eth_user_delivery).
            yield from self.kernel.cpu.consume(
                self.kernel.costs.eth_user_delivery
            )
        signal_due = channel.signal_cost_due
        channel.deliver(payload, link_info)
        if signal_due:
            self.stats["signals_charged"] += 1
            yield from self.kernel.cpu.consume(
                self.kernel.costs.semaphore_signal
            )

    def _to_kernel(self, ethertype: int, payload: bytes, link_info: LinkInfo) -> Generator:
        if self.kernel_rx is None:
            self.stats["rx_dropped"] += 1
            return
        self.stats["rx_to_kernel"] += 1
        yield from self.kernel_rx(ethertype, payload, link_info)
