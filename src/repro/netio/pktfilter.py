"""Input packet demultiplexing: interpreted filters vs synthesized demux.

The paper contrasts three generations of software demux:

* The original **CSPF packet filter** [Mogul/Rashid/Accetta]: "a
  stack-based language where 'filter programs' composed of stack
  operations and operators are interpreted by a kernel-resident program
  at packet reception time ... not likely to scale with CPU speeds
  because it is memory intensive."  :class:`FilterProgram` is that
  stack machine, executed for real.
* The **BPF** rewrite [McCanne/Jacobson]: register-based, faster.  We
  model its cost class with a cheaper per-instruction charge.
* **Synthesized demux** [Massalin/Pu-style]: "the demultiplexing logic
  requires only a few instructions" compiled into the kernel when a
  connection is registered.  :class:`CompiledDemux` is a direct closure
  with the paper's measured fixed cost (Table 5: 52 µs).

All three *really classify* the same packets; only their cost models
differ, which is what the ablation bench measures.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable, Optional

from ..costs import CostModel
from ..net.buf import as_wire_bytes
from ..net.headers import (
    ETHERTYPE_IP,
    EthernetHeader,
    Ipv4Header,
    PROTO_TCP,
    PROTO_UDP,
)


class Op(enum.Enum):
    """Stack-machine instructions (CSPF-style)."""

    PUSH_LIT = "pushlit"  # Push immediate 16-bit value.
    PUSH_SHORT = "pushshort"  # Push 16-bit word at byte offset arg.
    PUSH_BYTE = "pushbyte"  # Push byte at offset arg.
    EQ = "eq"  # Pop two, push 1 if equal else 0.
    AND = "and"  # Pop two, push bitwise and.
    OR = "or"  # Pop two, push bitwise or.


@dataclass(frozen=True)
class Instruction:
    op: Op
    arg: int = 0


class FilterError(ValueError):
    """Malformed filter program or execution fault."""


class FilterProgram:
    """An interpreted stack-machine packet filter.

    ``run`` executes the program against raw frame bytes; the packet is
    accepted if the final stack top is non-zero.  ``executed`` counts
    instructions interpreted (for cost accounting and the ablation).
    """

    MAX_STACK = 32

    def __init__(self, instructions: list[Instruction], name: str = "filter") -> None:
        if not instructions:
            raise FilterError("empty filter program")
        self.instructions = list(instructions)
        self.name = name
        self.executed = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def run(self, packet: bytes) -> bool:
        packet = as_wire_bytes(packet)  # interpreter reads flat octets
        stack: list[int] = []
        for instr in self.instructions:
            self.executed += 1
            if instr.op is Op.PUSH_LIT:
                stack.append(instr.arg & 0xFFFF)
            elif instr.op is Op.PUSH_SHORT:
                if instr.arg + 2 > len(packet):
                    stack.append(0)  # Out-of-range reads see zero.
                else:
                    stack.append(
                        struct.unpack_from("!H", packet, instr.arg)[0]
                    )
            elif instr.op is Op.PUSH_BYTE:
                stack.append(
                    packet[instr.arg] if instr.arg < len(packet) else 0
                )
            elif instr.op in (Op.EQ, Op.AND, Op.OR):
                if len(stack) < 2:
                    raise FilterError("stack underflow")
                b, a = stack.pop(), stack.pop()
                if instr.op is Op.EQ:
                    stack.append(1 if a == b else 0)
                elif instr.op is Op.AND:
                    stack.append(a & b)
                else:
                    stack.append(a | b)
            if len(stack) > self.MAX_STACK:
                raise FilterError("stack overflow")
        return bool(stack and stack[-1])

    def interpretation_cost(self, costs: CostModel, bpf_style: bool = False) -> float:
        """CPU cost of one execution under the given cost model."""
        per_instr = costs.pktfilter_interp_instr
        if bpf_style:
            per_instr /= 3.0  # BPF's register machine is ~3x the CSPF speed.
        return costs.pktfilter_dispatch + per_instr * len(self)


def tcp_filter_program(
    local_ip: int, local_port: int, remote_ip: int, remote_port: int
) -> FilterProgram:
    """Build the CSPF program matching one TCP connection's 4-tuple.

    Offsets assume an Ethernet frame: link header 14 bytes, then IPv4
    (no options), then TCP.
    """
    eth = EthernetHeader.LENGTH
    ip = eth + Ipv4Header.LENGTH
    instrs = [
        # Ethertype == IP
        Instruction(Op.PUSH_SHORT, 12),
        Instruction(Op.PUSH_LIT, ETHERTYPE_IP),
        Instruction(Op.EQ),
        # Protocol == TCP (byte at eth+9; pair with literal).
        Instruction(Op.PUSH_BYTE, eth + 9),
        Instruction(Op.PUSH_LIT, PROTO_TCP),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        # Source IP == remote (two 16-bit compares).
        Instruction(Op.PUSH_SHORT, eth + 12),
        Instruction(Op.PUSH_LIT, remote_ip >> 16),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        Instruction(Op.PUSH_SHORT, eth + 14),
        Instruction(Op.PUSH_LIT, remote_ip & 0xFFFF),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        # Destination IP == local.
        Instruction(Op.PUSH_SHORT, eth + 16),
        Instruction(Op.PUSH_LIT, local_ip >> 16),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        Instruction(Op.PUSH_SHORT, eth + 18),
        Instruction(Op.PUSH_LIT, local_ip & 0xFFFF),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        # TCP source port == remote port, dest port == local port.
        Instruction(Op.PUSH_SHORT, ip + 0),
        Instruction(Op.PUSH_LIT, remote_port),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        Instruction(Op.PUSH_SHORT, ip + 2),
        Instruction(Op.PUSH_LIT, local_port),
        Instruction(Op.EQ),
        Instruction(Op.AND),
    ]
    return FilterProgram(
        instrs, name=f"tcp {remote_ip:#x}:{remote_port}->{local_port}"
    )


class CompiledDemux:
    """Synthesized demux code: a direct predicate with fixed cost.

    The paper: "The logic required for address demultiplexing is simple
    and can be incorporated into the kernel either via run time code
    synthesis or via compilation when new protocols are added ...
    requires only a few instructions."
    """

    def __init__(
        self,
        predicate: Callable[[bytes], bool],
        name: str = "demux",
    ) -> None:
        self._predicate = predicate
        self.name = name
        self.executed = 0

    def run(self, packet: bytes) -> bool:
        self.executed += 1
        return self._predicate(packet)

    def interpretation_cost(self, costs: CostModel, bpf_style: bool = False) -> float:
        return costs.sw_demux


def compile_tcp_demux(
    local_ip: int, local_port: int, remote_ip: int, remote_port: int
) -> CompiledDemux:
    """The synthesized equivalent of :func:`tcp_filter_program`."""
    eth = EthernetHeader.LENGTH
    ip_off = eth + Ipv4Header.LENGTH
    want_ips = remote_ip.to_bytes(4, "big") + local_ip.to_bytes(4, "big")
    want_ports = struct.pack("!HH", remote_port, local_port)

    def predicate(packet: bytes) -> bool:
        return (
            len(packet) >= ip_off + 4
            and packet[12:14] == b"\x08\x00"
            and packet[eth + 9] == PROTO_TCP
            and packet[eth + 12 : eth + 20] == want_ips
            and packet[ip_off : ip_off + 4] == want_ports
        )

    return CompiledDemux(
        predicate, name=f"tcp {remote_ip:#x}:{remote_port}->{local_port}"
    )


def udp_filter_program(local_ip: int, local_port: int) -> FilterProgram:
    """CSPF program matching UDP datagrams to one bound local port."""
    eth = EthernetHeader.LENGTH
    ip = eth + Ipv4Header.LENGTH
    instrs = [
        Instruction(Op.PUSH_SHORT, 12),
        Instruction(Op.PUSH_LIT, ETHERTYPE_IP),
        Instruction(Op.EQ),
        Instruction(Op.PUSH_BYTE, eth + 9),
        Instruction(Op.PUSH_LIT, PROTO_UDP),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        Instruction(Op.PUSH_SHORT, eth + 16),
        Instruction(Op.PUSH_LIT, local_ip >> 16),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        Instruction(Op.PUSH_SHORT, eth + 18),
        Instruction(Op.PUSH_LIT, local_ip & 0xFFFF),
        Instruction(Op.EQ),
        Instruction(Op.AND),
        # UDP destination port.
        Instruction(Op.PUSH_SHORT, ip + 2),
        Instruction(Op.PUSH_LIT, local_port),
        Instruction(Op.EQ),
        Instruction(Op.AND),
    ]
    return FilterProgram(instrs, name=f"udp :{local_port}")


def compile_udp_demux(local_ip: int, local_port: int) -> CompiledDemux:
    """Synthesized demux for one UDP port binding."""
    eth = EthernetHeader.LENGTH
    ip_off = eth + Ipv4Header.LENGTH
    want_dst = local_ip.to_bytes(4, "big")
    want_port = local_port.to_bytes(2, "big")

    def predicate(packet: bytes) -> bool:
        return (
            len(packet) >= ip_off + 4
            and packet[12:14] == b"\x08\x00"
            and packet[eth + 9] == PROTO_UDP
            and packet[eth + 16 : eth + 20] == want_dst
            and packet[ip_off + 2 : ip_off + 4] == want_port
        )

    return CompiledDemux(predicate, name=f"udp :{local_port}")
