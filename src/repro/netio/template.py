"""Send-side header templates.

The paper (§3.2): "the network I/O module associates with the
capability a template that constrains the header fields of packets sent
using that capability.  The network I/O module verifies this against
the library packet before network transmission" — this is what prevents
a library from impersonating another connection.

A template is a set of byte-range constraints checked against the IP
packet a library asks the module to transmit.  The check really
compares bytes; impersonation tests flip header fields and must be
refused.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..net.headers import Ipv4Header, PROTO_TCP, PROTO_UDP


class TemplateViolation(Exception):
    """An outgoing packet did not match its send capability's template."""


@dataclass(frozen=True)
class ByteConstraint:
    """``packet[offset : offset+len(value)] == value``."""

    offset: int
    value: bytes

    def check(self, packet: bytes) -> bool:
        return packet[self.offset : self.offset + len(self.value)] == self.value


class HeaderTemplate:
    """An ordered set of byte constraints over an outgoing IP packet."""

    def __init__(self, constraints: list[ByteConstraint], name: str = "") -> None:
        if not constraints:
            raise ValueError("a template needs at least one constraint")
        self.constraints = list(constraints)
        self.name = name
        self.checks = 0
        self.violations = 0

    def __len__(self) -> int:
        return len(self.constraints)

    def matches(self, packet: bytes) -> bool:
        """True when every constraint holds."""
        self.checks += 1
        for constraint in self.constraints:
            if not constraint.check(packet):
                self.violations += 1
                return False
        return True

    def verify(self, packet: bytes) -> None:
        """Raise :class:`TemplateViolation` if the packet doesn't match."""
        if not self.matches(packet):
            raise TemplateViolation(
                f"packet violates send template {self.name!r}"
            )


def tcp_send_template(
    local_ip: int, local_port: int, remote_ip: int, remote_port: int
) -> HeaderTemplate:
    """Template binding a send capability to one TCP connection.

    Constrains (over the IP packet the library submits): IP protocol,
    source address (no address spoofing), destination address, and the
    TCP source/destination ports (no port hijacking).
    """
    ip_off = Ipv4Header.LENGTH
    return HeaderTemplate(
        [
            ByteConstraint(9, bytes([PROTO_TCP])),
            ByteConstraint(12, local_ip.to_bytes(4, "big")),
            ByteConstraint(16, remote_ip.to_bytes(4, "big")),
            ByteConstraint(ip_off, struct.pack("!HH", local_port, remote_port)),
        ],
        name=f"tcp {local_ip:#x}:{local_port}->{remote_ip:#x}:{remote_port}",
    )


def udp_send_template(
    local_ip: int, local_port: int
) -> HeaderTemplate:
    """Template for a UDP port binding: fixes protocol, source address,
    and source port; the destination is unconstrained (datagrams)."""
    ip_off = Ipv4Header.LENGTH
    return HeaderTemplate(
        [
            ByteConstraint(9, bytes([PROTO_UDP])),
            ByteConstraint(12, local_ip.to_bytes(4, "big")),
            ByteConstraint(ip_off, struct.pack("!H", local_port)),
        ],
        name=f"udp {local_ip:#x}:{local_port}",
    )
