"""The network I/O module and its mechanisms: packet filters, header
templates, and kernel↔library channels."""

from .channels import Channel, ChannelClosed
from .demux import (
    KERNEL_FLOW,
    DemuxDecision,
    DemuxEngine,
    DemuxError,
    FlowKey,
    FlowTable,
)
from .module import NetworkIoModule, SecurityViolation
from .pktfilter import (
    CompiledDemux,
    FilterError,
    FilterProgram,
    Instruction,
    Op,
    compile_tcp_demux,
    tcp_filter_program,
)
from .template import (
    ByteConstraint,
    HeaderTemplate,
    TemplateViolation,
    tcp_send_template,
    udp_send_template,
)

__all__ = [
    "NetworkIoModule",
    "SecurityViolation",
    "Channel",
    "ChannelClosed",
    "DemuxDecision",
    "DemuxEngine",
    "DemuxError",
    "FlowKey",
    "FlowTable",
    "KERNEL_FLOW",
    "FilterProgram",
    "CompiledDemux",
    "FilterError",
    "Instruction",
    "Op",
    "tcp_filter_program",
    "compile_tcp_demux",
    "HeaderTemplate",
    "ByteConstraint",
    "TemplateViolation",
    "tcp_send_template",
    "udp_send_template",
]
