"""The flow-table demultiplexing engine.

The paper's synthesized demux "requires only a few instructions" and
costs the same 52 µs whether one connection or hundreds are registered
(Table 5).  That claim is only honest if the implementation is actually
indexed: this module replaces the receive path's O(channels) scan of
per-channel predicates with a :class:`FlowTable` of three tiers.

* **Exact tier** — a dict keyed on the full 5-tuple
  ``(proto, local_ip, local_port, remote_ip, remote_port)``.  Installed
  by the registry when it grants an established connection.  One hash
  lookup classifies the packet; cost is the fixed
  :attr:`~repro.costs.CostModel.flow_lookup` charge regardless of how
  many flows are installed.
* **Wildcard tier** — a dict keyed on ``(proto, local_port)``, holding
  UDP port bindings and TCP passive-open listeners.  A wildcard entry
  may target either a channel (UDP binds) or the kernel
  (:data:`KERNEL_FLOW`: SYNs for a listening port go to the registry's
  handshake path).
* **Legacy scan tier** — an ordered list of interpreted filter programs
  (CSPF/BPF style), preserved so the Table 5 ablation can still run the
  historical organizations with their per-instruction cost accounting.
  Scanned only after the indexed tiers miss; under the interpreted
  demux styles it is the *only* tier consulted, faithful to kernels
  that predate flow tables.

Key extraction uses the same fixed header offsets as the synthesized
predicates in :mod:`repro.netio.pktfilter` (Ethernet 14 bytes, IPv4
without options): the paper's synthesized demux compiled exactly these
offsets into the kernel, and the equivalence property test in
``tests/netio/test_filter_fuzz.py`` relies on the three classifier
forms agreeing on every input, including truncated and malformed
frames.

The engine is pluggable: :class:`NetworkIoModule` accepts any object
implementing the :class:`DemuxEngine` interface, so alternative
organizations (hash-over-masks, tries, hardware offload models) can be
swapped in without touching the receive path.
"""

from __future__ import annotations

from ..counters import Counters
from dataclasses import dataclass
from typing import Optional

from ..costs import CostModel
from ..net.buf import as_wire_bytes
from ..net.headers import EthernetHeader, Ipv4Header, PROTO_TCP, PROTO_UDP

_ETH = EthernetHeader.LENGTH
_IP_OFF = _ETH + Ipv4Header.LENGTH

#: Wildcard-tier target meaning "deliver to the kernel consumer" — the
#: registry's handshake path owns this flow, not a user channel.
KERNEL_FLOW = object()


class DemuxError(ValueError):
    """Invalid flow installation (duplicate key, malformed key)."""


@dataclass(frozen=True)
class FlowKey:
    """The 5-tuple naming one flow.

    ``remote_ip``/``remote_port`` of zero mean "any" — such a key lives
    in the wildcard tier (UDP binds, passive opens); a fully specified
    key lives in the exact tier.
    """

    proto: int
    local_ip: int
    local_port: int
    remote_ip: int = 0
    remote_port: int = 0

    @property
    def is_exact(self) -> bool:
        return self.remote_ip != 0 and self.remote_port != 0

    def __str__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, str(self.proto))
        if self.is_exact:
            return (
                f"{proto} {self.remote_ip:#010x}:{self.remote_port}"
                f"->:{self.local_port}"
            )
        return f"{proto} *->:{self.local_port}"


@dataclass
class DemuxDecision:
    """Outcome of classifying one frame.

    ``target`` is the matched channel, :data:`KERNEL_FLOW`, or ``None``
    on a miss; ``cost`` is the CPU charge the receive path owes for the
    classification under the active cost model; ``scanned`` counts
    legacy filters executed.
    """

    target: object
    tier: str  # "exact" | "wildcard" | "scan" | "miss"
    cost: float
    scanned: int = 0

    @property
    def channel(self) -> object:
        """The matched channel, or ``None`` (miss or kernel flow)."""
        if self.target is None or self.target is KERNEL_FLOW:
            return None
        return self.target


@dataclass
class _WildcardEntry:
    local_ip: int  # 0 = any local address.
    target: object
    #: Tenant attribution (a tenant_id string) for audit and the
    #: shadow-rejection check; ``None`` for untenanted stacks.
    owner: object = None


class DemuxEngine:
    """Interface the network I/O module drives.

    Implementations map installed flows to channels; they never touch
    the kernel or charge costs themselves — :meth:`classify` *reports*
    the cost of the decision and the module consumes it, keeping the
    engine a pure data structure that benchmarks can drive directly.
    """

    def install(
        self, key: FlowKey, target: object, filter=None, owner: object = None
    ) -> None:
        raise NotImplementedError

    def remove(self, key: FlowKey, target: object = None) -> None:
        raise NotImplementedError

    def classify(self, frame: bytes, costs: CostModel) -> DemuxDecision:
        raise NotImplementedError

    def wildcard_target(
        self, proto: int, local_port: int, local_ip: int = 0
    ) -> object:
        raise NotImplementedError


class FlowTable(DemuxEngine):
    """The default three-tier engine (exact / wildcard / legacy scan)."""

    def __init__(self, style: str = "synthesized") -> None:
        if style not in ("synthesized", "cspf", "bpf"):
            raise DemuxError(f"unknown demux style {style!r}")
        #: Which cost regime classification runs under.  "synthesized"
        #: consults the indexed tiers at the fixed flow_lookup charge;
        #: "cspf"/"bpf" model the historical kernels: scan tier only,
        #: per-instruction interpretation costs.
        self.style = style
        self._exact: dict[FlowKey, object] = {}
        self._wildcard: dict[tuple[int, int], _WildcardEntry] = {}
        self._scan: list[tuple[object, object]] = []  # (filter, target)
        #: Tenant attribution of exact-tier flows: key -> owner, plus a
        #: per-(proto, port) owner multiset so a wildcard install can
        #: check for cross-tenant shadowing in O(1).
        self._exact_owners: dict[FlowKey, object] = {}
        self._port_owners: dict[tuple[int, int], Counters] = {}
        self.stats = Counters()
        #: Last-flow memo: back-to-back frames of one flow skip key
        #: extraction and the tier probes.  Keyed on the exact header
        #: bytes the 5-tuple is parsed from (proto byte + addresses +
        #: ports — never the checksum/length fields, which vary per
        #: segment), so a memo hit provably reproduces the full
        #: classification.  Only consulted under the synthesized style
        #: with an empty scan tier: interpreted styles charge per
        #: instruction, and legacy filters may match ahead of the
        #: indexed answer.  Invalidated on any install/remove.
        self._memo_key: object = None
        self._memo_target: object = None
        self._memo_tier: str = ""

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(
        self, key: FlowKey, target: object, filter=None, owner: object = None
    ) -> None:
        """Register ``key`` → ``target``, attributed to tenant ``owner``.

        With ``filter`` the flow additionally (for interpreted styles,
        exclusively) joins the legacy scan tier.  The indexed entry is
        always maintained so kernel-side consumers (the UDP forwarder)
        can resolve flows regardless of style.

        A wildcard install whose port already carries another tenant's
        exact-match flows is refused (``wildcard_rejected`` audit
        counter): a match on the wildcard tier would otherwise capture
        every *future* remote endpoint on that port, silently shadowing
        the other tenant's traffic.
        """
        if key.is_exact:
            if key in self._exact:
                raise DemuxError(f"flow {key} already installed")
            self._exact[key] = target
            if owner is not None:
                self._exact_owners[key] = owner
                port = (key.proto, key.local_port)
                owners = self._port_owners.get(port)
                if owners is None:
                    owners = self._port_owners[port] = Counters()
                owners[owner] += 1
        else:
            wkey = (key.proto, key.local_port)
            if wkey in self._wildcard:
                raise DemuxError(f"wildcard flow {key} already installed")
            if owner is not None:
                foreign = [
                    other
                    for other, count in self._port_owners.get(wkey, {}).items()
                    if count > 0 and other != owner
                ]
                if foreign:
                    self.stats["wildcard_rejected"] += 1
                    raise DemuxError(
                        f"wildcard flow {key} (tenant {owner}) would shadow"
                        f" exact flows of tenant(s) {sorted(foreign)}"
                    )
            self._wildcard[wkey] = _WildcardEntry(key.local_ip, target, owner)
        if filter is not None:
            self._scan.append((filter, target))
        self._memo_key = None

    def remove(self, key: FlowKey, target: object = None) -> None:
        """Tear one flow down; unknown keys are ignored (teardown must
        be idempotent — inheritance and explicit release may race)."""
        if key.is_exact:
            self._exact.pop(key, None)
            owner = self._exact_owners.pop(key, None)
            if owner is not None:
                owners = self._port_owners.get((key.proto, key.local_port))
                if owners is not None:
                    owners[owner] -= 1
        else:
            self._wildcard.pop((key.proto, key.local_port), None)
        if target is not None:
            self._scan = [
                entry for entry in self._scan if entry[1] is not target
            ]
        self._memo_key = None

    def wildcard_owner(self, proto: int, local_port: int) -> object:
        """Tenant attribution of a wildcard entry (netstat/audit)."""
        entry = self._wildcard.get((proto, local_port))
        return entry.owner if entry is not None else None

    def wildcard_target(
        self, proto: int, local_port: int, local_ip: int = 0
    ) -> object:
        """Kernel-side flow resolution (no cost, no stats): the UDP
        forwarder asks which channel owns a port binding."""
        entry = self._wildcard.get((proto, local_port))
        if entry is None:
            return None
        if entry.local_ip and local_ip and entry.local_ip != local_ip:
            return None
        return entry.target

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @staticmethod
    def extract_key(frame: bytes) -> Optional[FlowKey]:
        """Parse the 5-tuple from a raw Ethernet frame.

        Fixed offsets, IPv4-without-options, exactly like the
        synthesized predicates the paper compiled into the kernel; a
        frame too short to carry both ports yields no key.
        """
        if len(frame) < _IP_OFF + 4 or frame[12:14] != b"\x08\x00":
            return None
        return FlowKey(
            proto=frame[_ETH + 9],
            local_ip=int.from_bytes(frame[_ETH + 16 : _ETH + 20], "big"),
            local_port=int.from_bytes(frame[_IP_OFF + 2 : _IP_OFF + 4], "big"),
            remote_ip=int.from_bytes(frame[_ETH + 12 : _ETH + 16], "big"),
            remote_port=int.from_bytes(frame[_IP_OFF : _IP_OFF + 2], "big"),
        )

    def classify(self, frame: bytes, costs: CostModel) -> DemuxDecision:
        """Resolve one IP frame to its flow target.

        Synthesized style: one indexed lookup at the fixed
        ``flow_lookup`` charge (hit or miss — the lookup runs either
        way), then any legacy filters.  Interpreted styles: scan tier
        only, charged per program executed, stopping at the first
        match — the O(channels) behaviour the ablation measures.
        """
        frame = as_wire_bytes(frame)  # filters need the flat image
        cost = 0.0
        mkey = None
        if self.style == "synthesized":
            cost = costs.flow_lookup
            memoable = (
                not self._scan
                and len(frame) >= _IP_OFF + 4
                and frame[12] == 0x08
                and frame[13] == 0x00
            )
            if memoable:
                mkey = (frame[_ETH + 9], frame[_ETH + 12 : _IP_OFF + 4])
                if mkey == self._memo_key:
                    tier = self._memo_tier
                    self.stats["memo_hits"] += 1
                    if tier == "miss":
                        # Routers classify every forwarded frame and
                        # never match a flow; the repeated miss is as
                        # memoable as a hit (same fixed lookup charge).
                        self.stats["misses"] += 1
                        return DemuxDecision(None, "miss", cost)
                    self.stats[tier + "_hits"] += 1
                    return DemuxDecision(self._memo_target, tier, cost)
            key = self.extract_key(frame)
            if key is not None:
                target = self._exact.get(key)
                if target is not None:
                    self.stats["exact_hits"] += 1
                    if memoable:
                        self._memo_key = mkey
                        self._memo_target = target
                        self._memo_tier = "exact"
                    return DemuxDecision(target, "exact", cost)
                entry = self._wildcard.get((key.proto, key.local_port))
                if entry is not None and entry.local_ip in (0, key.local_ip):
                    self.stats["wildcard_hits"] += 1
                    if memoable:
                        self._memo_key = mkey
                        self._memo_target = entry.target
                        self._memo_tier = "wildcard"
                    return DemuxDecision(entry.target, "wildcard", cost)
        bpf = self.style == "bpf"
        scanned = 0
        for filt, target in self._scan:
            scanned += 1
            cost += filt.interpretation_cost(costs, bpf_style=bpf)
            if filt.run(frame):
                self.stats["scan_hits"] += 1
                self._note_scan(scanned)
                return DemuxDecision(target, "scan", cost, scanned)
        self._note_scan(scanned)
        self.stats["misses"] += 1
        if mkey is not None:
            # Only reachable with an empty scan tier (``memoable``), so
            # the memoized miss repeats the same fixed lookup charge.
            self._memo_key = mkey
            self._memo_target = None
            self._memo_tier = "miss"
        return DemuxDecision(None, "miss", cost, scanned)

    def _note_scan(self, scanned: int) -> None:
        if scanned:
            self.stats["filters_scanned"] += scanned
            if scanned > self.stats["max_scan_len"]:
                self.stats["max_scan_len"] = scanned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def exact_count(self) -> int:
        return len(self._exact)

    @property
    def wildcard_count(self) -> int:
        return len(self._wildcard)

    @property
    def scan_count(self) -> int:
        return len(self._scan)

    def __len__(self) -> int:
        return self.exact_count + self.wildcard_count

    def __repr__(self) -> str:
        return (
            f"<FlowTable {self.style} exact={self.exact_count}"
            f" wildcard={self.wildcard_count} scan={self.scan_count}>"
        )
