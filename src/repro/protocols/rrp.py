"""A request/response transport (VMTP-flavoured), sans-io.

The paper's opening motivation: "the need for an efficient transport
for distributed systems was a factor in the development of
request/response protocols in lieu of existing byte-stream protocols
such as TCP ... Experience with specialized protocols shows that they
achieve remarkably low latencies.  However these protocols do not
always deliver the highest throughput."  [Birrell/Nelson RPC, Cheriton's
VMTP]

This is that *other kind* of protocol, built to co-exist with the TCP
library on the same hosts: transactions instead of connections,
at-most-once execution on the server, client-driven retransmission —
no handshake, no byte stream, no windows.

Like the TCP core it is sans-io: :class:`RrpClient` and
:class:`RrpServer` consume events and return actions; the plumbing in
:mod:`repro.org.udplib` (or any datagram substrate) moves the bytes.

Wire format (on top of UDP)::

    0      1      2              4              8
    +------+------+--------------+--------------+----...
    | type | flags|   reserved   |  transaction |  payload
    +------+------+--------------+--------------+----...

    type: 1=REQUEST, 2=RESPONSE, 3=ACK(of response, optional)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

_HEADER = struct.Struct("!BBHI")

TYPE_REQUEST = 1
TYPE_RESPONSE = 2

#: Server-side transaction cache lifetime: long enough to absorb client
#: retransmissions of an already-answered request (at-most-once).
DEFAULT_CACHE_TTL = 30.0
DEFAULT_TIMEOUT = 0.5
DEFAULT_RETRIES = 5


class RrpError(Exception):
    """Protocol violation or transaction failure."""


@dataclass(frozen=True)
class RrpMessage:
    """One decoded RRP message."""

    kind: int
    transaction: int
    payload: bytes

    def pack(self) -> bytes:
        return _HEADER.pack(self.kind, 0, 0, self.transaction) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "RrpMessage":
        if len(data) < _HEADER.size:
            raise RrpError(f"short RRP message ({len(data)} bytes)")
        kind, _flags, _reserved, transaction = _HEADER.unpack_from(data)
        if kind not in (TYPE_REQUEST, TYPE_RESPONSE):
            raise RrpError(f"unknown RRP message type {kind}")
        return cls(kind, transaction, bytes(data[_HEADER.size :]))


# ----------------------------------------------------------------------
# Actions (what the plumbing executes)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SendDatagram:
    """Transmit ``data`` to ``(ip, port)``."""

    ip: int
    port: int
    data: bytes


@dataclass(frozen=True)
class SetRetry:
    """Arm the retry timer for ``transaction`` after ``delay`` seconds."""

    transaction: int
    delay: float


@dataclass(frozen=True)
class Complete:
    """Transaction finished: deliver ``payload`` to the caller."""

    transaction: int
    payload: bytes


@dataclass(frozen=True)
class Failed:
    """Transaction gave up after exhausting retries."""

    transaction: int
    reason: str


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


@dataclass
class _PendingCall:
    ip: int
    port: int
    request: bytes
    attempts: int = 0


class RrpClient:
    """Issues transactions; retransmits until a response arrives."""

    def __init__(
        self,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        if timeout <= 0:
            raise RrpError("timeout must be positive")
        self.timeout = timeout
        self.retries = retries
        self._next_transaction = 1
        self._pending: dict[int, _PendingCall] = {}
        self.stats = {"calls": 0, "retransmits": 0, "duplicates": 0}

    def call(self, ip: int, port: int, payload: bytes) -> tuple[int, list]:
        """Begin a transaction.  Returns (transaction id, actions)."""
        transaction = self._next_transaction
        self._next_transaction = (self._next_transaction + 1) & 0xFFFFFFFF or 1
        wire = RrpMessage(TYPE_REQUEST, transaction, payload).pack()
        self._pending[transaction] = _PendingCall(ip, port, wire, attempts=1)
        self.stats["calls"] += 1
        return transaction, [
            SendDatagram(ip, port, wire),
            SetRetry(transaction, self.timeout),
        ]

    def on_datagram(self, data: bytes) -> list:
        """Feed a received datagram; may complete a transaction."""
        try:
            message = RrpMessage.unpack(data)
        except RrpError:
            return []
        if message.kind != TYPE_RESPONSE:
            return []
        call = self._pending.pop(message.transaction, None)
        if call is None:
            self.stats["duplicates"] += 1
            return []  # Late duplicate response; already completed.
        return [Complete(message.transaction, message.payload)]

    def on_retry(self, transaction: int) -> list:
        """The retry timer for ``transaction`` fired."""
        call = self._pending.get(transaction)
        if call is None:
            return []  # Completed in the meantime.
        if call.attempts > self.retries:
            del self._pending[transaction]
            return [Failed(transaction, "no response")]
        call.attempts += 1
        self.stats["retransmits"] += 1
        return [
            SendDatagram(call.ip, call.port, call.request),
            SetRetry(transaction, self.timeout),
        ]

    @property
    def outstanding(self) -> int:
        return len(self._pending)


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------


class RrpServer:
    """Executes requests at most once; replays cached responses.

    ``handler(payload) -> bytes`` runs application logic exactly once
    per (client, transaction); retransmitted requests are answered from
    the response cache without re-executing — the at-most-once
    semantics request/response protocols promise.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        cache_ttl: float = DEFAULT_CACHE_TTL,
    ) -> None:
        self.handler = handler
        self.cache_ttl = cache_ttl
        #: (client_addr, transaction) -> (response wire bytes, expiry).
        self._cache: dict[tuple, tuple[bytes, float]] = {}
        self.stats = {"executed": 0, "replayed": 0, "expired": 0}

    def on_datagram(self, data: bytes, client: tuple, now: float) -> list:
        """Feed a received datagram from ``client``, an ``(ip, port)``
        tuple used both as the cache key and the reply address."""
        try:
            message = RrpMessage.unpack(data)
        except RrpError:
            return []
        if message.kind != TYPE_REQUEST:
            return []
        self._expire(now)
        key = (client, message.transaction)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats["replayed"] += 1
            wire = cached[0]
        else:
            response = self.handler(message.payload)
            wire = RrpMessage(
                TYPE_RESPONSE, message.transaction, response
            ).pack()
            self._cache[key] = (wire, now + self.cache_ttl)
            self.stats["executed"] += 1
        ip, port = client
        return [SendDatagram(ip, port, wire)]

    def _expire(self, now: float) -> None:
        stale = [key for key, (_, expiry) in self._cache.items() if expiry <= now]
        for key in stale:
            del self._cache[key]
        self.stats["expired"] += len(stale)

    @property
    def cached(self) -> int:
        return len(self._cache)
