"""Sans-io IPv4: encapsulation, fragmentation, reassembly, and the
per-hop rewrite forwarding needs.

The paper's IP library "does not implement the functions required for
handling gateway traffic" — end hosts here likewise do no forwarding,
but the switched-fabric :class:`~repro.net.fabric.router.Router` does:
:func:`forwarded_copy` performs the one per-hop mutation IPv4 requires
(TTL decrement + checksum rebuild).  Fragmentation/reassembly is real:
a TCP/UDP payload larger than the link MTU leaves as multiple fragments
and is reassembled at the final destination (fragments forward like any
other packet; only endpoints reassemble).
"""

from __future__ import annotations

from ..counters import Counters
from dataclasses import dataclass, field
from typing import Optional

from ..net.buf import prepend, slice_view
from ..net.checksum import incremental_update
from ..net.headers import (
    IP_FLAG_DF,
    IP_FLAG_MF,
    HeaderError,
    Ipv4Header,
)


class IpError(ValueError):
    """Invalid IP operation or datagram."""


def forwarded_copy(header: Ipv4Header, packet):
    """The per-hop rewrite: ``packet`` with TTL decremented and the
    header checksum patched incrementally (RFC 1624) — the payload is
    carried forward by reference, not copied.

    ``header`` must be the already-unpacked header of ``packet``.
    Raises :class:`IpError` if the TTL cannot be decremented — the
    caller (a router) must instead drop the packet and send ICMP
    time-exceeded.
    """
    if header.ttl <= 1:
        raise IpError("TTL expired in transit")
    head = bytearray(packet[: Ipv4Header.LENGTH])
    old = head[8:10]  # TTL byte + protocol byte: one 16-bit word.
    new = bytes(((header.ttl - 1), head[9]))
    checksum = int.from_bytes(head[10:12], "big")
    checksum = incremental_update(checksum, old, new)
    head[8:10] = new
    head[10:12] = checksum.to_bytes(2, "big")
    return prepend(bytes(head), slice_view(packet, Ipv4Header.LENGTH))


@dataclass(frozen=True)
class IpDatagram:
    """A reassembled datagram handed up to the transport."""

    src: int
    dst: int
    protocol: int
    payload: bytes


@dataclass
class _Reassembly:
    """State for one in-progress fragmented datagram."""

    fragments: dict[int, bytes] = field(default_factory=dict)  # offset->data
    total_length: Optional[int] = None  # Data length once the last frag is seen.
    first_seen: float = 0.0


class IpStack:
    """One host's IP layer (sans-io).

    ``send`` turns a transport payload into wire packets; ``receive``
    turns a wire packet into zero or one :class:`IpDatagram` (zero while
    fragments are outstanding).  Time is passed in for reassembly
    expiry; the caller drives :meth:`expire` off its clock.
    """

    #: Reassembly timeout (RFC 791 suggests 15 s at TTL granularity).
    REASSEMBLY_TIMEOUT = 30.0

    def __init__(self, local_ip: int) -> None:
        self.local_ip = local_ip
        self._ident = 0
        self._reassembly: dict[tuple[int, int, int, int], _Reassembly] = {}
        self.stats = Counters()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def send(
        self,
        dst: int,
        protocol: int,
        payload: bytes,
        mtu: int = 1500,
        ttl: int = 64,
        dont_fragment: bool = False,
    ) -> list:
        """Build the wire packet(s) for one transport payload.

        Each packet is the IP header prepended onto the (unsliced)
        transport payload — a fragment chain in zero-copy mode."""
        if mtu < Ipv4Header.LENGTH + 8:
            raise IpError(f"absurd MTU {mtu}")
        self._ident = (self._ident + 1) % 0x10000
        ident = self._ident
        self.stats["sent"] += 1
        max_data = mtu - Ipv4Header.LENGTH
        if len(payload) <= max_data:
            header = Ipv4Header(
                src=self.local_ip,
                dst=dst,
                protocol=protocol,
                total_length=Ipv4Header.LENGTH + len(payload),
                ident=ident,
                flags=IP_FLAG_DF if dont_fragment else 0,
                ttl=ttl,
            )
            return [prepend(header.pack(), payload)]
        if dont_fragment:
            raise IpError(
                f"payload of {len(payload)} bytes needs fragmentation "
                f"but DF is set (MTU {mtu})"
            )
        # Fragment: each fragment's data length a multiple of 8 except the last.
        chunk = (max_data // 8) * 8
        packets = []
        offset = 0
        while offset < len(payload):
            data = slice_view(payload, offset, min(offset + chunk, len(payload)))
            last = offset + len(data) >= len(payload)
            header = Ipv4Header(
                src=self.local_ip,
                dst=dst,
                protocol=protocol,
                total_length=Ipv4Header.LENGTH + len(data),
                ident=ident,
                flags=0 if last else IP_FLAG_MF,
                frag_offset=offset // 8,
                ttl=ttl,
            )
            packets.append(prepend(header.pack(), data))
            offset += len(data)
        self.stats["fragments_sent"] += len(packets)
        return packets

    # ------------------------------------------------------------------
    # Input
    # ------------------------------------------------------------------

    def receive(self, packet, now: float = 0.0) -> Optional[IpDatagram]:
        """Process one wire packet; returns a datagram when complete.

        The datagram's payload is a zero-copy view into ``packet``.
        Malformed or misaddressed packets are counted and dropped
        (returning None), never raised — input comes from the network.
        """
        try:
            header = Ipv4Header.unpack(packet)
        except HeaderError:
            self.stats["bad_checksum"] += 1
            return None
        if header.dst != self.local_ip:
            self.stats["not_ours"] += 1
            return None
        if header.total_length > len(packet):
            self.stats["bad_checksum"] += 1
            return None
        payload = slice_view(packet, Ipv4Header.LENGTH, header.total_length)
        self.stats["received"] += 1

        if header.frag_offset == 0 and not header.more_fragments:
            return IpDatagram(header.src, header.dst, header.protocol, payload)
        return self._reassemble(header, payload, now)

    def _reassemble(
        self, header: Ipv4Header, payload: bytes, now: float
    ) -> Optional[IpDatagram]:
        self.stats["fragments_received"] += 1
        key = (header.src, header.dst, header.protocol, header.ident)
        state = self._reassembly.get(key)
        if state is None:
            state = _Reassembly(first_seen=now)
            self._reassembly[key] = state
        state.fragments[header.frag_offset * 8] = payload
        if not header.more_fragments:
            state.total_length = header.frag_offset * 8 + len(payload)
        if state.total_length is None:
            return None
        # Check contiguity.
        data = bytearray(state.total_length)
        covered = 0
        for offset in sorted(state.fragments):
            chunk = state.fragments[offset]
            if offset > covered:
                return None  # Hole remains.
            end = offset + len(chunk)
            data[offset:end] = chunk
            covered = max(covered, end)
        if covered < state.total_length:
            return None
        del self._reassembly[key]
        self.stats["reassembled"] += 1
        return IpDatagram(
            header.src, header.dst, header.protocol, bytes(data)
        )

    def expire(self, now: float) -> int:
        """Drop reassembly state older than the timeout.  Returns count."""
        stale = [
            key
            for key, state in self._reassembly.items()
            if now - state.first_seen > self.REASSEMBLY_TIMEOUT
        ]
        for key in stale:
            del self._reassembly[key]
        self.stats["expired"] += len(stale)
        return len(stale)

    @property
    def pending_reassemblies(self) -> int:
        return len(self._reassembly)
