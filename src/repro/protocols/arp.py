"""Sans-io ARP: IPv4-to-MAC resolution with a timed cache.

The paper's applications link an ARP library alongside TCP and IP; this
is that library's core.  ``resolve`` either answers from the cache or
tells the caller to broadcast a request while it queues the outbound
payload; ``receive`` processes requests/replies, releasing queued
payloads when a reply lands.
"""

from __future__ import annotations

from ..counters import Counters
from dataclasses import dataclass, field
from typing import Optional

from ..net.headers import (
    ARP_REPLY,
    ARP_REQUEST,
    BROADCAST_MAC,
    ArpPacket,
)


@dataclass(frozen=True)
class SendArp:
    """Caller should transmit this ARP packet to ``dst_mac``."""

    packet: ArpPacket
    dst_mac: bytes


@dataclass(frozen=True)
class Resolved:
    """A queued payload can now go to ``mac``."""

    ip: int
    mac: bytes
    payload: object


@dataclass
class _CacheEntry:
    mac: bytes
    learned_at: float


class ArpStack:
    """One host's ARP state machine."""

    #: Cache entry lifetime (4.3BSD used 20 minutes).
    CACHE_TTL = 1200.0
    #: Re-request interval while resolution is outstanding.
    RETRY_INTERVAL = 1.0
    #: Queued payloads per destination (BSD kept exactly one).
    QUEUE_LIMIT = 8

    def __init__(self, local_ip: int, local_mac: bytes) -> None:
        self.local_ip = local_ip
        self.local_mac = local_mac
        self._cache: dict[int, _CacheEntry] = {}
        self._pending: dict[int, list[object]] = {}
        self._last_request: dict[int, float] = {}
        self.stats = Counters()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def lookup(self, ip: int, now: float) -> Optional[bytes]:
        """Cache-only lookup; honours entry expiry."""
        entry = self._cache.get(ip)
        if entry is None:
            return None
        if now - entry.learned_at > self.CACHE_TTL:
            del self._cache[ip]
            return None
        return entry.mac

    def resolve(self, ip: int, payload: object, now: float) -> list[object]:
        """Resolve ``ip`` for ``payload``.

        Returns actions: a single :class:`Resolved` on a cache hit, or a
        :class:`SendArp` broadcast (rate-limited) with the payload queued.
        """
        mac = self.lookup(ip, now)
        if mac is not None:
            self.stats["cache_hits"] += 1
            return [Resolved(ip, mac, payload)]
        self.stats["cache_misses"] += 1
        queue = self._pending.setdefault(ip, [])
        if len(queue) >= self.QUEUE_LIMIT:
            self.stats["queue_drops"] += 1
            queue.pop(0)
        queue.append(payload)
        actions: list[object] = []
        last = self._last_request.get(ip)
        if last is None or now - last >= self.RETRY_INTERVAL:
            self._last_request[ip] = now
            self.stats["requests_sent"] += 1
            actions.append(
                SendArp(
                    ArpPacket(
                        ARP_REQUEST,
                        self.local_mac,
                        self.local_ip,
                        b"\x00" * 6,
                        ip,
                    ),
                    BROADCAST_MAC,
                )
            )
        return actions

    # ------------------------------------------------------------------
    # Input
    # ------------------------------------------------------------------

    def receive(self, packet: ArpPacket, now: float) -> list[object]:
        """Process an incoming ARP packet."""
        actions: list[object] = []
        # Opportunistically learn the sender's binding (RFC 826).
        if packet.sender_ip != 0:
            self._learn(packet.sender_ip, packet.sender_mac, now, actions)
        if packet.oper == ARP_REQUEST and packet.target_ip == self.local_ip:
            self.stats["replies_sent"] += 1
            actions.append(
                SendArp(
                    ArpPacket(
                        ARP_REPLY,
                        self.local_mac,
                        self.local_ip,
                        packet.sender_mac,
                        packet.sender_ip,
                    ),
                    packet.sender_mac,
                )
            )
        elif packet.oper == ARP_REPLY:
            self.stats["replies_received"] += 1
        return actions

    def _learn(self, ip: int, mac: bytes, now: float, actions: list[object]) -> None:
        self._cache[ip] = _CacheEntry(mac, now)
        queued = self._pending.pop(ip, [])
        self._last_request.pop(ip, None)
        for payload in queued:
            actions.append(Resolved(ip, mac, payload))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def retry(self, now: float) -> list[object]:
        """Re-broadcast requests for destinations still unresolved."""
        actions: list[object] = []
        for ip in list(self._pending):
            last = self._last_request.get(ip, 0.0)
            if now - last >= self.RETRY_INTERVAL:
                self._last_request[ip] = now
                self.stats["requests_sent"] += 1
                actions.append(
                    SendArp(
                        ArpPacket(
                            ARP_REQUEST,
                            self.local_mac,
                            self.local_ip,
                            b"\x00" * 6,
                            ip,
                        ),
                        BROADCAST_MAC,
                    )
                )
        return actions

    @property
    def cache_size(self) -> int:
        return len(self._cache)
