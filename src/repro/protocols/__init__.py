"""The protocol libraries: sans-io TCP, IP, ARP, UDP, and ICMP.

These correspond to the paper's user-linkable protocol libraries.  Each
is a pure event-in/action-out engine; the plumbing that runs them inside
a particular protocol organization lives in :mod:`repro.org`.
"""

from .arp import ArpStack, Resolved, SendArp
from .checksum import internet_checksum, pseudo_header, verify_checksum
from .icmp import (
    EchoMessage,
    UNREACH_PORT,
    UnreachableMessage,
    decode_echo,
    decode_unreachable,
    encode_echo,
    encode_unreachable,
    make_reply,
)
from .ip import IpDatagram, IpError, IpStack
from .rrp import RrpClient, RrpError, RrpMessage, RrpServer
from .udp import (
    UdpDatagram,
    UdpError,
    UdpPortTable,
    decode_datagram,
    encode_datagram,
)

__all__ = [
    "internet_checksum",
    "verify_checksum",
    "pseudo_header",
    "IpStack",
    "IpDatagram",
    "IpError",
    "RrpClient",
    "RrpServer",
    "RrpMessage",
    "RrpError",
    "ArpStack",
    "SendArp",
    "Resolved",
    "UdpPortTable",
    "UdpDatagram",
    "UdpError",
    "encode_datagram",
    "decode_datagram",
    "EchoMessage",
    "UnreachableMessage",
    "encode_unreachable",
    "decode_unreachable",
    "UNREACH_PORT",
    "encode_echo",
    "decode_echo",
    "make_reply",
]
