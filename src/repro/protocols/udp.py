"""Sans-io UDP: datagram encode/decode and a port table.

UDP is the protocol the earlier user-level implementations (Topaz on the
Firefly, CMU's Mach work) handled; the paper argues the interesting case
is TCP.  We provide UDP both for completeness and for the examples that
show multiple protocol libraries coexisting in one application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.headers import PROTO_UDP, HeaderError, UdpHeader
from .checksum import internet_checksum, pseudo_header


class UdpError(ValueError):
    """Invalid UDP operation."""


@dataclass(frozen=True)
class UdpDatagram:
    """A received datagram."""

    src_ip: int
    src_port: int
    dst_port: int
    payload: bytes


def encode_datagram(
    sport: int, dport: int, payload: bytes, src_ip: int, dst_ip: int
) -> bytes:
    """Serialize one UDP datagram with a real checksum."""
    length = UdpHeader.LENGTH + len(payload)
    header = UdpHeader(sport=sport, dport=dport, length=length, checksum=0)
    body = header.pack() + payload
    pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
    checksum = internet_checksum(pseudo + body)
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: zero means "no checksum".
    return body[:6] + checksum.to_bytes(2, "big") + body[8:]


def decode_datagram(
    data: bytes, src_ip: int, dst_ip: int, verify: bool = True
) -> UdpDatagram:
    """Parse one UDP datagram, verifying length and checksum."""
    header = UdpHeader.unpack(data)
    if header.length > len(data):
        raise HeaderError(f"UDP length {header.length} exceeds data")
    body = data[: header.length]
    if verify and header.checksum != 0:
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, header.length)
        if internet_checksum(pseudo + body) != 0:
            raise HeaderError("UDP checksum mismatch")
    return UdpDatagram(
        src_ip=src_ip,
        src_port=header.sport,
        dst_port=header.dport,
        payload=bytes(body[UdpHeader.LENGTH :]),
    )


class UdpPortTable:
    """Port allocation and demultiplexing for one host's UDP."""

    EPHEMERAL_START = 1024

    def __init__(self) -> None:
        self._bound: dict[int, Callable[[UdpDatagram], None]] = {}
        self._next_ephemeral = self.EPHEMERAL_START
        self.stats = {"delivered": 0, "no_port": 0, "bad_datagram": 0}

    def bind(self, port: int, handler: Callable[[UdpDatagram], None]) -> int:
        """Bind ``handler`` to ``port`` (0 picks an ephemeral port)."""
        if port == 0:
            port = self.allocate_ephemeral()
        if port in self._bound:
            raise UdpError(f"port {port} already bound")
        self._bound[port] = handler
        return port

    def unbind(self, port: int) -> None:
        self._bound.pop(port, None)

    def allocate_ephemeral(self) -> int:
        for _ in range(0x10000 - self.EPHEMERAL_START):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 0x10000:
                self._next_ephemeral = self.EPHEMERAL_START
            if port not in self._bound:
                return port
        raise UdpError("no ephemeral ports left")

    def is_bound(self, port: int) -> bool:
        return port in self._bound

    def deliver(self, data: bytes, src_ip: int, dst_ip: int) -> bool:
        """Decode and dispatch; returns True if a handler consumed it."""
        try:
            datagram = decode_datagram(data, src_ip, dst_ip)
        except HeaderError:
            self.stats["bad_datagram"] += 1
            return False
        handler = self._bound.get(datagram.dst_port)
        if handler is None:
            self.stats["no_port"] += 1
            return False
        self.stats["delivered"] += 1
        handler(datagram)
        return True
