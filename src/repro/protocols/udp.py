"""Sans-io UDP: datagram encode/decode and a port table.

UDP is the protocol the earlier user-level implementations (Topaz on the
Firefly, CMU's Mach work) handled; the paper argues the interesting case
is TCP.  We provide UDP both for completeness and for the examples that
show multiple protocol libraries coexisting in one application.
"""

from __future__ import annotations

from ..counters import Counters
from dataclasses import dataclass
from typing import Callable, Optional

from ..net.buf import STATS, prepend, slice_view
from ..net.checksum import checksum_parts
from ..net.headers import PROTO_UDP, HeaderError, UdpHeader
from .checksum import internet_checksum, pseudo_header  # noqa: F401 (re-export)


class UdpError(ValueError):
    """Invalid UDP operation."""


@dataclass(frozen=True)
class UdpDatagram:
    """A received datagram."""

    src_ip: int
    src_port: int
    dst_port: int
    payload: bytes


def encode_datagram(
    sport: int, dport: int, payload, src_ip: int, dst_ip: int
):
    """Serialize one UDP datagram with a real checksum.

    The header is prepended onto the unsliced payload — a fragment
    chain in zero-copy mode, flat ``bytes`` in eager mode."""
    length = UdpHeader.LENGTH + len(payload)
    header = UdpHeader(sport=sport, dport=dport, length=length, checksum=0)
    head = bytearray(header.pack())
    pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
    checksum = checksum_parts(pseudo, head, payload)
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: zero means "no checksum".
    head[6:8] = checksum.to_bytes(2, "big")
    return prepend(bytes(head), payload)


def decode_datagram(
    data, src_ip: int, dst_ip: int, verify: bool = True
) -> UdpDatagram:
    """Parse one UDP datagram, verifying length and checksum.

    The returned payload is a zero-copy view into ``data``."""
    header = UdpHeader.unpack(data)
    if header.length > len(data):
        raise HeaderError(f"UDP length {header.length} exceeds data")
    if verify and header.checksum != 0:
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, header.length)
        if checksum_parts(pseudo, slice_view(data, 0, header.length)) != 0:
            raise HeaderError("UDP checksum mismatch")
    return UdpDatagram(
        src_ip=src_ip,
        src_port=header.sport,
        dst_port=header.dport,
        payload=slice_view(data, UdpHeader.LENGTH, header.length),
    )


class UdpPortTable:
    """Port allocation and demultiplexing for one host's UDP."""

    EPHEMERAL_START = 1024

    def __init__(self) -> None:
        self._bound: dict[int, Callable[[UdpDatagram], None]] = {}
        self._next_ephemeral = self.EPHEMERAL_START
        self.stats = Counters()

    def bind(self, port: int, handler: Callable[[UdpDatagram], None]) -> int:
        """Bind ``handler`` to ``port`` (0 picks an ephemeral port)."""
        if port == 0:
            port = self.allocate_ephemeral()
        if port in self._bound:
            raise UdpError(f"port {port} already bound")
        self._bound[port] = handler
        return port

    def unbind(self, port: int) -> None:
        self._bound.pop(port, None)

    def allocate_ephemeral(self) -> int:
        for _ in range(0x10000 - self.EPHEMERAL_START):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 0x10000:
                self._next_ephemeral = self.EPHEMERAL_START
            if port not in self._bound:
                return port
        raise UdpError("no ephemeral ports left")

    def is_bound(self, port: int) -> bool:
        return port in self._bound

    def deliver(self, data: bytes, src_ip: int, dst_ip: int) -> bool:
        """Decode and dispatch; returns True if a handler consumed it."""
        try:
            datagram = decode_datagram(data, src_ip, dst_ip)
        except HeaderError:
            self.stats["bad_datagram"] += 1
            return False
        if not isinstance(datagram.payload, (bytes, bytearray)):
            # Application boundary: the kernel-path software demux hands
            # handlers owned bytes, not a view into the rx frame — this
            # copy is the one the legacy kernel UDP path genuinely pays.
            payload = bytes(datagram.payload)
            STATS.copied_bytes += len(payload)
            STATS.copy_ops += 1
            datagram = UdpDatagram(
                datagram.src_ip, datagram.src_port,
                datagram.dst_port, payload,
            )
        handler = self._bound.get(datagram.dst_port)
        if handler is None:
            self.stats["no_port"] += 1
            return False
        self.stats["delivered"] += 1
        handler(datagram)
        return True
