"""Backwards-compatible surface for the congestion-control extraction.

Congestion control now lives in the pluggable :mod:`.cc` package
(``reno``/``tahoe``, ``cubic``, ``bbr`` behind a registry); this module
keeps the original import path and class name alive.
:class:`CongestionControl` *is* :class:`~.cc.reno.Reno` — the same
fields, the same arithmetic, byte-identical on the wire.
"""

from __future__ import annotations

from .cc import CC_ALGORITHMS, CongestionAlgorithm, algorithms, make_cc
from .cc.base import MAX_WINDOW
from .cc.reno import Reno as CongestionControl

__all__ = [
    "CC_ALGORITHMS",
    "CongestionAlgorithm",
    "CongestionControl",
    "MAX_WINDOW",
    "algorithms",
    "make_cc",
]
