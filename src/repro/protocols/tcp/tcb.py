"""The transmission control block: all per-connection state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .cc import CongestionAlgorithm, make_cc
from .reassembly import ReassemblyQueue
from .rto import RttEstimator


class State(enum.Enum):
    """RFC 793 connection states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN-SENT"
    SYN_RCVD = "SYN-RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN-WAIT-1"
    FIN_WAIT_2 = "FIN-WAIT-2"
    CLOSE_WAIT = "CLOSE-WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST-ACK"
    TIME_WAIT = "TIME-WAIT"


#: States in which the connection is usable for data transfer.
SYNCHRONIZED_STATES = frozenset(
    {
        State.ESTABLISHED,
        State.FIN_WAIT_1,
        State.FIN_WAIT_2,
        State.CLOSE_WAIT,
        State.CLOSING,
        State.LAST_ACK,
        State.TIME_WAIT,
    }
)


@dataclass(frozen=True)
class TcpConfig:
    """Tuning knobs for one connection."""

    #: Maximum segment size we announce and default to.
    mss: int = 1460
    #: Receive buffer (and therefore maximum advertised window).
    rcv_buffer: int = 16384
    #: Send buffer capacity.
    snd_buffer: int = 16384
    #: Maximum segment lifetime; TIME-WAIT holds 2*msl.  The paper-era
    #: BSD default was 30 s.
    msl: float = 30.0
    #: Delayed-ACK interval (BSD fast timeout: 200 ms).
    delack_time: float = 0.2
    #: Connection-establishment timeout (BSD: 75 s).
    conn_timeout: float = 75.0
    #: Give up after this many consecutive retransmissions of one point.
    max_retransmits: int = 12
    #: Nagle's algorithm (coalescing of small writes).
    nagle: bool = True
    #: Keepalive probing of idle connections (BSD SO_KEEPALIVE).
    keepalive: bool = False
    #: Idle time before the first keepalive probe (BSD: 2 hours).
    keepalive_idle: float = 7200.0
    #: Interval between unanswered probes (BSD: 75 s).
    keepalive_interval: float = 75.0
    #: Unanswered probes before the connection is dropped (BSD: 8).
    keepalive_probes: int = 8
    #: Congestion-control algorithm, by registry name: "reno", "tahoe",
    #: "cubic", or "bbr" (see :mod:`repro.protocols.tcp.cc`).
    cc: str = "reno"
    #: Congestion flavour: "reno" or "tahoe" (only meaningful when the
    #: algorithm is Reno-family; kept distinct from ``cc`` for the
    #: pre-extraction API).
    flavor: str = "reno"
    #: Duplicate ACKs before fast retransmit.  3 is the conformant BSD
    #: value; other values exist so the conformance campaign can seed a
    #: deliberately broken stack and prove the invariant checkers fire.
    dup_ack_threshold: int = 3
    #: Van Jacobson receive-side header prediction: route the common
    #: case (pure in-window ACK, or next-in-sequence data, on an
    #: ESTABLISHED connection) through :meth:`TcpMachine.fast_input`
    #: instead of the full RFC 793 segment-arrival machinery.  The fast
    #: path is proven byte-identical to the slow path by the golden
    #: wire-digest regression and the fuzz equivalence suite, so this
    #: knob exists for those A/B tests, not for behaviour.
    header_prediction: bool = True
    #: Minimum/initial RTO bounds (seconds).  The floor must exceed the
    #: peer's delayed-ACK interval or every delayed ACK races the
    #: retransmission timer (BSD kept a >= 0.5 s floor for this reason).
    min_rto: float = 0.5
    initial_rto: float = 1.0
    max_rto: float = 64.0


@dataclass
class Tcb:
    """Connection state per RFC 793 plus BSD additions.

    Variable names follow the RFC: ``snd_una``/``snd_nxt``/``snd_wnd``
    for the send side, ``rcv_nxt``/``rcv_wnd`` for the receive side.
    """

    local_port: int
    remote_port: int
    config: TcpConfig
    iss: int = 0

    state: State = State.CLOSED

    # Send sequence space.
    snd_una: int = 0
    snd_nxt: int = 0
    snd_wnd: int = 0
    snd_wl1: int = 0  # Segment seq used for the last window update.
    snd_wl2: int = 0  # Segment ack used for the last window update.
    snd_max: int = 0  # Highest sequence sent (for retransmit bookkeeping).

    # Receive sequence space.
    irs: int = 0
    rcv_nxt: int = 0

    # Buffers.
    send_buffer: bytearray = field(default_factory=bytearray)
    #: Sequence number of send_buffer[0].  SYN and FIN occupy sequence
    #: space but no buffer space, so this is tracked explicitly (it is
    #: iss+1 once the SYN is sent, then advances as ACKs drain data).
    buf_base: int = 0
    reassembly: ReassemblyQueue = field(default_factory=ReassemblyQueue)
    #: Bytes delivered to the app but not yet consumed (shrinks rcv_wnd).
    rcv_user: int = 0
    #: Window the peer last saw us advertise.
    rcv_adv: int = 0

    # Negotiated values.
    peer_mss: Optional[int] = None

    # Helpers.
    rtt: RttEstimator = field(default_factory=RttEstimator)
    cc: CongestionAlgorithm = None  # type: ignore[assignment]

    # Flags.
    fin_pending: bool = False  # App closed; FIN not yet sent.
    fin_sent: bool = False
    fin_seq: Optional[int] = None  # Sequence number our FIN occupies.
    fin_rcvd: bool = False
    delack_pending: bool = False
    rexmt_count: int = 0
    #: Persist-timer backoff exponent.
    persist_shift: int = 0
    #: Time of the last segment heard from the peer (keepalive idle).
    last_heard: float = 0.0
    #: Consecutive unanswered keepalive probes.
    keepalive_count: int = 0

    def __post_init__(self) -> None:
        if self.cc is None:
            self.cc = make_cc(
                self.config.cc,
                mss=self.config.mss,
                flavor=self.config.flavor,
                dup_threshold=self.config.dup_ack_threshold,
            )
        self.rtt.min_rto = self.config.min_rto
        self.rtt.initial_rto = self.config.initial_rto
        self.rtt.max_rto = self.config.max_rto

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def mss(self) -> int:
        """Effective segment size: min of ours and the peer's."""
        if self.peer_mss is None:
            return self.config.mss
        return min(self.config.mss, self.peer_mss)

    @property
    def rcv_wnd(self) -> int:
        """Receive window we can advertise right now.

        Out-of-order bytes on the reassembly queue deliberately do *not*
        shrink the window (4.3BSD computes the window from socket-buffer
        space alone): if they did, every duplicate ACK would carry a
        different window and the peer's fast-retransmit dup-ACK test
        (``len == 0 and win == snd_wnd``) could never fire.
        """
        return max(0, self.config.rcv_buffer - self.rcv_user)

    @property
    def flight_size(self) -> int:
        """Unacknowledged bytes in the network."""
        from .seq import seq_diff

        return max(0, seq_diff(self.snd_nxt, self.snd_una))

    @property
    def send_window(self) -> int:
        """Usable window: min(peer window, congestion window)."""
        return min(self.snd_wnd, self.cc.window)

    @property
    def send_buffer_space(self) -> int:
        """Room left for application writes."""
        return max(0, self.config.snd_buffer - len(self.send_buffer))

    @property
    def sent_data_bytes(self) -> int:
        """Buffered bytes already transmitted at least once."""
        from .seq import seq_diff

        sent = seq_diff(self.snd_nxt, self.buf_base)
        if self.fin_sent and self.fin_seq is not None:
            from .seq import seq_gt

            if seq_gt(self.snd_nxt, self.fin_seq):
                sent -= 1  # Exclude the FIN's sequence slot.
        return min(max(0, sent), len(self.send_buffer))

    @property
    def unsent_bytes(self) -> int:
        """Buffered bytes not yet transmitted the first time."""
        return len(self.send_buffer) - self.sent_data_bytes
