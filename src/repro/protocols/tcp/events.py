"""Input events for the sans-io TCP machine.

The machine is driven exclusively through these; each carries everything
the machine needs (including the current time, supplied by the caller —
the machine owns no clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from .wire import Segment


class TcpInputEvent:
    """Base class for machine inputs."""


@dataclass(frozen=True)
class SegmentArrives(TcpInputEvent):
    """A (checksum-valid) segment was demultiplexed to this connection."""

    segment: Segment


@dataclass(frozen=True)
class AppSend(TcpInputEvent):
    """The application wrote ``data`` to the connection."""

    data: bytes
    push: bool = True


@dataclass(frozen=True)
class AppRead(TcpInputEvent):
    """The application consumed ``nbytes`` of delivered data.

    Opens the receive window; the machine decides whether the opening
    warrants a window-update segment.
    """

    nbytes: int


@dataclass(frozen=True)
class AppClose(TcpInputEvent):
    """Orderly release: FIN after queued data drains."""


@dataclass(frozen=True)
class AppAbort(TcpInputEvent):
    """Abortive release: RST now, discard everything."""


@dataclass(frozen=True)
class TimerExpires(TcpInputEvent):
    """A timer the machine armed via SetTimer has fired."""

    name: str
