"""Reno/Tahoe: 4.3BSD-style slow start / congestion avoidance with fast
retransmit, and optional Reno fast recovery.

This is the reference implementation of the pluggable interface — the
exact state machine the stack shipped with before the extraction, kept
byte-identical on the wire (``tests/protocols/test_cc_regression.py``
holds it to the pre-refactor golden trace).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import CongestionAlgorithm, MAX_WINDOW


@dataclass
class Reno(CongestionAlgorithm):
    """cwnd/ssthresh state machine (Tahoe or Reno flavour)."""

    name = "reno"
    loss_based = True

    mss: int
    #: Reno adds fast recovery (window inflation during recovery);
    #: Tahoe falls back to slow start after fast retransmit.
    flavor: str = "reno"

    cwnd: int = 0
    ssthresh: int = MAX_WINDOW
    #: Dup-ACK counter toward fast retransmit.
    dupacks: int = 0
    #: True while in Reno fast recovery.
    in_recovery: bool = False
    #: Duplicate ACKs required to trigger fast retransmit.  The BSD (and
    #: RFC) value is 3; it is a field, not a constant, so conformance
    #: tests can deliberately mis-tune a stack and prove the checkers
    #: catch the resulting premature retransmissions.
    dup_threshold: int = 3

    DUP_THRESHOLD = 3  # The conformant value, kept as the class default.

    def __post_init__(self) -> None:
        if self.flavor not in ("tahoe", "reno"):
            raise ValueError(f"unknown congestion flavor {self.flavor!r}")
        if self.cwnd == 0:
            self.cwnd = self.mss  # Slow start begins at one segment.

    def on_new_ack(
        self, acked_bytes: int, now: float = 0.0, flight_size: int = 0
    ) -> None:
        """A cumulative ACK advanced snd_una by ``acked_bytes``."""
        self.dupacks = 0
        if self.in_recovery:
            # Reno: deflate back to ssthresh when recovery completes.
            self.in_recovery = False
            self.cwnd = self.ssthresh
            return
        if self.cwnd < self.ssthresh:
            # Slow start: one MSS per ACK.
            self.cwnd = min(self.cwnd + self.mss, MAX_WINDOW)
        else:
            # Congestion avoidance: ~one MSS per RTT (per-ACK increment
            # of mss*mss/cwnd, the classic BSD approximation).
            self.cwnd = min(
                self.cwnd + max(1, self.mss * self.mss // self.cwnd),
                MAX_WINDOW,
            )

    def on_duplicate_ack(self, flight_size: int, now: float = 0.0) -> bool:
        """Count a duplicate ACK.  Returns True when the caller should
        fast-retransmit (exactly on the third duplicate)."""
        self.dupacks += 1
        if self.dupacks == self.dup_threshold:
            self._halve(flight_size)
            if self.flavor == "reno":
                self.in_recovery = True
                self.cwnd = self.ssthresh + self.dup_threshold * self.mss
            else:
                self.cwnd = self.mss
            return True
        if self.dupacks > self.dup_threshold and self.in_recovery:
            # Each further dup inflates the window by one MSS (Reno).
            self.cwnd = min(self.cwnd + self.mss, MAX_WINDOW)
        return False

    def on_timeout(self, flight_size: int, now: float = 0.0) -> None:
        """Retransmission timeout: collapse to one segment."""
        self._halve(flight_size)
        self.cwnd = self.mss
        self.dupacks = 0
        self.in_recovery = False

    def _halve(self, flight_size: int) -> None:
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
