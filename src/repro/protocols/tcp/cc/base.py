"""The pluggable congestion-control interface.

The machine asks one question — "how many bytes may be in flight?" —
answered by ``min(peer window, cc.window)``; an algorithm owns cwnd and
answers it.  Everything an algorithm learns arrives through a small
event API driven by :class:`~repro.protocols.tcp.machine.TcpMachine`:

``on_new_ack(acked_bytes, now, flight_size)``
    A cumulative ACK advanced ``snd_una`` by ``acked_bytes``.
    ``flight_size`` is the bytes still outstanding *after* the ACK.
``on_duplicate_ack(flight_size, now)``
    A duplicate ACK arrived; returns True when the caller should
    fast-retransmit (exactly on the ``dup_threshold``-th duplicate).
``on_timeout(flight_size, now)``
    The retransmission timer fired.
``on_rtt_sample(rtt, now)``
    The RTT estimator took a clean (Karn-valid) sample.
``window`` (property)
    Bytes the algorithm currently allows in flight.
``pacing_rate()``
    Bytes/second the algorithm would pace at, or ``None`` for classic
    ack-clocked (unpaced) sending.  The machine does not enforce
    pacing; rate-based algorithms (BBR) bound in-flight data through
    ``window`` and expose the rate for observability and benchmarks.

``now`` is simulated seconds, always supplied by the machine; the
default of 0.0 keeps hand-driven unit tests terse.  Time-based
algorithms (CUBIC's epoch clock, BBR's filters) only ever compare
differences of ``now`` values, so any monotone clock works.

The paper's argument is that user-level implementation makes this kind
of protocol innovation cheap: a new loss response is one subclass and a
registry entry, and the conformance campaign (:mod:`repro.check`) and
the dumbbell race (``benchmarks/bench_congestion.py``) come for free.
"""

from __future__ import annotations

from typing import Optional

#: Congestion-window ceiling (the classic pre-window-scaling maximum).
MAX_WINDOW = 65535


class CongestionAlgorithm:
    """Event API every congestion-control algorithm implements.

    Subclasses are dataclasses holding their own state; the shared
    surface the machine (and the invariant checkers) rely on is:

    * ``mss`` / ``cwnd`` / ``ssthresh`` / ``dupacks`` / ``dup_threshold``
      attributes (``ssthresh`` may be vestigial for rate-based models);
    * the event methods below;
    * ``name`` and ``loss_based`` class attributes — ``loss_based`` is
      False for algorithms (BBR) whose loss response is intentionally
      not multiplicative decrease, which exempts them from the
      ``cc-sanity`` decrease invariant.
    """

    #: Registry name (class attribute, overridden per algorithm).
    name: str = "abstract"
    #: True when a convicted loss must multiplicatively shrink ssthresh.
    loss_based: bool = True

    # Subclasses (dataclasses) declare these as fields.
    mss: int
    cwnd: int
    ssthresh: int
    dupacks: int
    dup_threshold: int

    # -- events --------------------------------------------------------

    def on_new_ack(
        self, acked_bytes: int, now: float = 0.0, flight_size: int = 0
    ) -> None:
        raise NotImplementedError

    def on_duplicate_ack(self, flight_size: int, now: float = 0.0) -> bool:
        raise NotImplementedError

    def on_timeout(self, flight_size: int, now: float = 0.0) -> None:
        raise NotImplementedError

    def on_rtt_sample(self, rtt: float, now: float = 0.0) -> None:
        """Default: RTT-blind (Reno/CUBIC ignore clean samples)."""

    # -- queries -------------------------------------------------------

    @property
    def window(self) -> int:
        """Bytes the congestion window currently allows in flight."""
        return min(self.cwnd, MAX_WINDOW)

    def pacing_rate(self) -> Optional[float]:
        """Bytes/second to pace at; None means ack-clocked (unpaced)."""
        return None

    def set_mss(self, mss: int) -> None:
        """The handshake learned the effective MSS: adopt it and reset
        the initial window (one segment, the 4.3BSD opening move)."""
        self.mss = mss
        self.cwnd = mss
