"""CUBIC (RFC 8312 shape): window growth as a cubic function of the
time since the last congestion event.

After a loss the window is cut to ``beta * cwnd`` and then regrows
along ``W(t) = C*(t - K)^3 + w_max`` (windows in MSS units, ``t`` in
sim-seconds since the epoch started): **concave** while ``t < K``
(fast approach to the old plateau, flattening near it), **convex**
once ``t > K`` (cautious probing that accelerates the longer the path
stays clean).  ``K = cbrt(w_max * beta_decrement / C)`` is the time
the curve takes to return to ``w_max``.

Also implemented: **fast convergence** (a flow whose plateau keeps
shrinking cedes its share faster by remembering a deflated ``w_max``)
and the **TCP-friendly region** (never grow slower than a Reno flow
would; keeps CUBIC competitive at small windows/short RTTs where the
cubic term is minuscule).

Loss detection mechanics (dup-ACK counting, fast-recovery inflation
and deflation) deliberately mirror :class:`~.reno.Reno` so the two
algorithms differ only in their growth and decrease laws — which is
exactly what the dumbbell race isolates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .base import CongestionAlgorithm, MAX_WINDOW


@dataclass
class Cubic(CongestionAlgorithm):
    """Concave/convex window growth on sim-time since the last loss."""

    name = "cubic"
    loss_based = True

    mss: int
    cwnd: int = 0
    ssthresh: int = MAX_WINDOW
    dupacks: int = 0
    in_recovery: bool = False
    dup_threshold: int = 3

    #: Cubic scaling constant (windows in MSS units, time in seconds).
    c: float = 0.4
    #: Multiplicative-decrease factor (RFC 8312 uses 0.7).
    beta: float = 0.7
    #: Fast convergence: release bandwidth faster when w_max shrinks.
    fast_convergence: bool = True

    #: Window (in MSS units) at the last congestion event.
    w_max: float = 0.0
    #: Epoch origin: sim-time of the first ACK after the last loss.
    epoch_start: Optional[float] = None
    #: Time (seconds from epoch start) at which W(t) regains w_max.
    k: float = 0.0
    #: Reno-rate estimate for the TCP-friendly region (bytes).
    w_est: float = 0.0

    def __post_init__(self) -> None:
        if self.cwnd == 0:
            self.cwnd = self.mss

    # -- growth --------------------------------------------------------

    def w_cubic(self, t: float) -> float:
        """The cubic curve in *bytes* at ``t`` seconds into the epoch."""
        return (self.c * (t - self.k) ** 3 + self.w_max) * self.mss

    def on_new_ack(
        self, acked_bytes: int, now: float = 0.0, flight_size: int = 0
    ) -> None:
        self.dupacks = 0
        if self.in_recovery:
            self.in_recovery = False
            self.cwnd = self.ssthresh
            return
        if self.cwnd < self.ssthresh:
            # Slow start, same as Reno: one MSS per ACK.
            self.cwnd = min(self.cwnd + self.mss, MAX_WINDOW)
            return
        if self.epoch_start is None:
            # First congestion-avoidance ACK of a new epoch.
            self.epoch_start = now
            if self.w_max < self.cwnd / self.mss:
                # No plateau above us (e.g. exiting slow start without a
                # loss): probe from here, K = 0 puts us on the convex
                # branch immediately.
                self.w_max = self.cwnd / self.mss
                self.k = 0.0
            else:
                self.k = (self.w_max * (1 - self.beta) / self.c) ** (1 / 3)
            self.w_est = float(self.cwnd)
        t = now - self.epoch_start
        target = self.w_cubic(t)
        if target > self.cwnd:
            # Concave (t < K) or convex (t > K) region: close a
            # per-ACK fraction of the gap to the curve (RFC 8312's
            # (target - cwnd)/cwnd segments-per-ACK rule).
            step = max(1, int(self.mss * (target - self.cwnd) / self.cwnd))
        else:
            # At/above the curve (plateau): creep, ~1% MSS per ACK.
            step = max(1, self.mss * self.mss // (100 * self.cwnd))
        # TCP-friendly region: track what a Reno flow would have
        # (AIMD with beta 0.7 grows 3*(1-beta)/(1+beta) MSS per RTT).
        self.w_est += (
            3 * (1 - self.beta) / (1 + self.beta)
            * self.mss * self.mss / self.cwnd
        )
        self.cwnd = min(
            max(self.cwnd + step, int(self.w_est)), MAX_WINDOW
        )

    # -- loss ----------------------------------------------------------

    def on_duplicate_ack(self, flight_size: int, now: float = 0.0) -> bool:
        self.dupacks += 1
        if self.dupacks == self.dup_threshold:
            self._congestion_event(flight_size)
            self.in_recovery = True
            self.cwnd = self.ssthresh + self.dup_threshold * self.mss
            return True
        if self.dupacks > self.dup_threshold and self.in_recovery:
            self.cwnd = min(self.cwnd + self.mss, MAX_WINDOW)
        return False

    def on_timeout(self, flight_size: int, now: float = 0.0) -> None:
        self._congestion_event(flight_size)
        self.cwnd = self.mss
        self.dupacks = 0
        self.in_recovery = False

    def _congestion_event(self, flight_size: int) -> None:
        """Record the plateau and cut the window (multiplicative
        decrease with CUBIC's gentler beta)."""
        w = self.cwnd / self.mss
        if self.fast_convergence and w < self.w_max:
            # Plateau shrinking: remember a deflated maximum so this
            # flow converges down and releases bandwidth faster.
            self.w_max = w * (1 + self.beta) / 2
        else:
            self.w_max = w
        self.epoch_start = None
        self.ssthresh = max(int(self.cwnd * self.beta), 2 * self.mss)
