"""Pluggable congestion control: the registry and its algorithms.

Any connection picks its algorithm by name through
:attr:`~repro.protocols.tcp.tcb.TcpConfig.cc`; :func:`make_cc` is the
single construction point, so the sabotage knob
(``TcpConfig.dup_ack_threshold``) and the negotiated MSS reach every
algorithm uniformly.

Shipped algorithms:

=========  =========================================================
``reno``   4.3BSD slow start/congestion avoidance + fast recovery
           (``tahoe`` selects the recovery-free flavour).
``cubic``  Concave/convex growth on time since last loss, fast
           convergence, TCP-friendly region (RFC 8312 shape).
``bbr``    Rate-based model: windowed max-bandwidth / min-RTT
           filters, startup/drain/probe_bw gain cycling, in-flight
           capped at ``cwnd_gain * BDP`` instead of loss-driven cwnd.
=========  =========================================================

Registering a new algorithm is one call::

    @register("vegas")
    def _make_vegas(mss, flavor, dup_threshold):
        return Vegas(mss=mss, dup_threshold=dup_threshold)

after which ``TcpConfig(cc="vegas")`` threads it through every
organization, the conformance campaign, and the dumbbell race.
"""

from __future__ import annotations

from typing import Callable

from .base import CongestionAlgorithm, MAX_WINDOW
from .bbr import BbrModel
from .cubic import Cubic
from .reno import Reno

#: name -> factory(mss, flavor, dup_threshold) -> CongestionAlgorithm.
_REGISTRY: dict[str, Callable[..., CongestionAlgorithm]] = {}

#: The racing set: one entry per distinct algorithm (flavours excluded).
CC_ALGORITHMS = ("reno", "cubic", "bbr")


def register(name: str):
    """Decorator registering a congestion-control factory under ``name``."""

    def wrap(factory: Callable[..., CongestionAlgorithm]):
        _REGISTRY[name] = factory
        return factory

    return wrap


def algorithms() -> tuple[str, ...]:
    """Every registered algorithm name."""
    return tuple(sorted(_REGISTRY))


def make_cc(
    name: str,
    mss: int,
    flavor: str = "reno",
    dup_threshold: int = 3,
) -> CongestionAlgorithm:
    """Construct the named algorithm.

    ``flavor`` only matters to ``reno`` (Tahoe vs Reno recovery);
    ``dup_threshold`` — the conformance campaign's sabotage knob —
    reaches *every* algorithm.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown congestion algorithm {name!r} "
            f"(registered: {', '.join(algorithms())})"
        )
    return factory(mss=mss, flavor=flavor, dup_threshold=dup_threshold)


@register("reno")
def _make_reno(mss: int, flavor: str, dup_threshold: int) -> Reno:
    return Reno(mss=mss, flavor=flavor, dup_threshold=dup_threshold)


@register("tahoe")
def _make_tahoe(mss: int, flavor: str, dup_threshold: int) -> Reno:
    return Reno(mss=mss, flavor="tahoe", dup_threshold=dup_threshold)


@register("cubic")
def _make_cubic(mss: int, flavor: str, dup_threshold: int) -> Cubic:
    return Cubic(mss=mss, dup_threshold=dup_threshold)


@register("bbr")
def _make_bbr(mss: int, flavor: str, dup_threshold: int) -> BbrModel:
    return BbrModel(mss=mss, dup_threshold=dup_threshold)


__all__ = [
    "CongestionAlgorithm",
    "MAX_WINDOW",
    "CC_ALGORITHMS",
    "Reno",
    "Cubic",
    "BbrModel",
    "algorithms",
    "make_cc",
    "register",
]
