"""A BBR-style model: rate-based congestion control from path
measurement instead of loss.

The model keeps the two filters BBR is built on — a windowed **max**
of delivery-rate samples (estimated bottleneck bandwidth) and a
windowed **min** of clean RTT samples (estimated propagation delay) —
and derives the bandwidth-delay product.  In-flight data is capped at
``cwnd_gain * BDP``: loss does *not* shrink the window (a convicted
loss still triggers retransmission of the missing segment, just no
multiplicative decrease), which is why ``loss_based`` is False and the
``cc-sanity`` decrease invariant exempts it.

Phases, as in BBR's state machine:

``startup``
    Grow the window by the acked bytes each ACK (doubling per RTT,
    pacing gain 2/ln2) until the bandwidth filter stops growing —
    three consecutive non-growing updates mean the pipe is full.
``drain``
    Inverse gain; hold the window at the BDP cap until in-flight data
    sinks to the estimated BDP, draining the queue startup built.
``probe_bw``
    Steady state: cycle pacing gains 1.25, 0.75, 1, 1, 1, 1, 1, 1 —
    one min-RTT interval each — probing for more bandwidth then
    yielding the surplus.  The in-flight cap follows
    ``pacing_gain`` below 1 so the yield phase actually drains.

Delivery rate is sampled as acked-bytes over elapsed time, accumulated
over at least one min-RTT (one millisecond floor) so ACK compression
cannot fake an arbitrarily high rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .base import CongestionAlgorithm, MAX_WINDOW

#: 2/ln2: fills the pipe in log2(BDP) round trips.
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
#: The steady-state gain cycle (one min-RTT interval per entry).
PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


@dataclass
class BbrModel(CongestionAlgorithm):
    """Windowed max-bandwidth / min-RTT model with gain cycling."""

    name = "bbr"
    loss_based = False

    mss: int
    cwnd: int = 0
    #: Vestigial for a rate-based model; kept so every algorithm shows
    #: the same introspection surface (and the sabotage knob plumbing
    #: can be asserted uniformly).
    ssthresh: int = MAX_WINDOW
    dupacks: int = 0
    in_recovery: bool = False
    dup_threshold: int = 3

    #: In-flight cap multiplier over the estimated BDP.
    cwnd_gain: float = 2.0
    #: Seconds of history the bandwidth/RTT filters keep.
    filter_window: float = 10.0
    #: Floor on the window, in segments (BBR's minimum of 4).
    min_cwnd_segments: int = 4

    state: str = "startup"
    pacing_gain: float = STARTUP_GAIN

    #: (time, bytes/sec) delivery-rate samples inside filter_window.
    bw_samples: list = field(default_factory=list)
    #: (time, seconds) clean RTT samples inside filter_window.
    rtt_samples: list = field(default_factory=list)

    # Delivery-rate accumulator (bytes acked since _acc_start).
    _acc_bytes: int = 0
    _acc_start: Optional[float] = None

    # Startup full-pipe detection.
    _full_bw: float = 0.0
    _full_bw_count: int = 0

    # probe_bw gain cycling.
    _cycle_index: int = 0
    _cycle_start: float = 0.0

    def __post_init__(self) -> None:
        if self.cwnd == 0:
            self.cwnd = self.min_cwnd_segments * self.mss

    # -- filters -------------------------------------------------------

    @property
    def max_bw(self) -> Optional[float]:
        """Windowed-max estimated bottleneck bandwidth (bytes/sec)."""
        if not self.bw_samples:
            return None
        return max(bw for _, bw in self.bw_samples)

    @property
    def min_rtt(self) -> Optional[float]:
        """Windowed-min estimated propagation delay (seconds)."""
        if not self.rtt_samples:
            return None
        return min(rtt for _, rtt in self.rtt_samples)

    @property
    def bdp(self) -> Optional[float]:
        """Estimated bandwidth-delay product in bytes."""
        bw, rtt = self.max_bw, self.min_rtt
        if bw is None or rtt is None:
            return None
        return bw * rtt

    def _expire(self, samples: list, now: float) -> None:
        horizon = now - self.filter_window
        while samples and samples[0][0] < horizon:
            samples.pop(0)

    def on_rtt_sample(self, rtt: float, now: float = 0.0) -> None:
        self._expire(self.rtt_samples, now)
        self.rtt_samples.append((now, rtt))

    def _interval(self) -> float:
        """One filter/cycle interval: the min RTT, floored at 1 ms."""
        rtt = self.min_rtt
        return max(rtt if rtt is not None else 0.0, 1e-3)

    def _sample_bandwidth(self, acked_bytes: int, now: float) -> None:
        if self._acc_start is None:
            self._acc_start = now
            self._acc_bytes = 0
            return
        self._acc_bytes += acked_bytes
        elapsed = now - self._acc_start
        if elapsed < self._interval():
            return  # Accumulate ≥ one RTT so ACK bursts cannot lie.
        self._expire(self.bw_samples, now)
        self.bw_samples.append((now, self._acc_bytes / elapsed))
        self._acc_start = now
        self._acc_bytes = 0
        self._update_full_pipe()

    def _update_full_pipe(self) -> None:
        if self.state != "startup":
            return
        bw = self.max_bw or 0.0
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
        else:
            self._full_bw_count += 1

    # -- the state machine ---------------------------------------------

    def on_new_ack(
        self, acked_bytes: int, now: float = 0.0, flight_size: int = 0
    ) -> None:
        self.dupacks = 0
        self.in_recovery = False
        self._sample_bandwidth(acked_bytes, now)
        floor = self.min_cwnd_segments * self.mss
        bdp = self.bdp

        if self.state == "startup":
            self.pacing_gain = STARTUP_GAIN
            # Exponential growth: cwnd += acked (doubling per RTT).
            self.cwnd = min(self.cwnd + acked_bytes, MAX_WINDOW)
            if self._full_bw_count >= 3:
                self.state = "drain"
        if self.state == "drain":
            self.pacing_gain = DRAIN_GAIN
            if bdp is not None:
                self.cwnd = max(int(self.cwnd_gain * bdp), floor)
                if flight_size <= bdp:
                    # Queue drained: enter steady state.
                    self.state = "probe_bw"
                    self._cycle_index = 0
                    self._cycle_start = now
        if self.state == "probe_bw":
            if now - self._cycle_start >= self._interval():
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_GAINS)
                self._cycle_start = now
            self.pacing_gain = PROBE_GAINS[self._cycle_index]
            if bdp is not None:
                # The in-flight cap follows sub-unity gains so the
                # yield phase actually drains the queue.
                cap = self.cwnd_gain * bdp * min(1.0, self.pacing_gain)
                self.cwnd = max(int(cap), floor)
        self.cwnd = min(self.cwnd, MAX_WINDOW)

    def on_duplicate_ack(self, flight_size: int, now: float = 0.0) -> bool:
        """Convict the loss (retransmit at the threshold) but keep the
        model's window: loss is noise, not a congestion signal."""
        self.dupacks += 1
        return self.dupacks == self.dup_threshold

    def on_timeout(self, flight_size: int, now: float = 0.0) -> None:
        """An RTO is real trouble: probe with one segment (the filters
        survive, so the window restores once ACKs flow again)."""
        self.cwnd = self.mss
        self.dupacks = 0
        self._acc_start = None
        self._acc_bytes = 0

    # -- queries -------------------------------------------------------

    @property
    def window(self) -> int:
        return min(max(self.cwnd, self.mss), MAX_WINDOW)

    def set_mss(self, mss: int) -> None:
        """Adopt the negotiated MSS, keeping BBR's 4-segment floor."""
        self.mss = mss
        self.cwnd = self.min_cwnd_segments * mss

    def pacing_rate(self) -> Optional[float]:
        """Bytes/second: pacing_gain times the bandwidth estimate."""
        bw = self.max_bw
        if bw is None:
            return None
        return self.pacing_gain * bw
