"""Out-of-order segment reassembly for the TCP receive path."""

from __future__ import annotations

from .seq import seq_add, seq_diff, seq_ge, seq_le, seq_lt


class ReassemblyQueue:
    """Holds payload beyond ``rcv_nxt`` until the gap before it fills.

    Stored as a sorted list of non-overlapping ``(seq, bytes)`` runs;
    inserts trim overlap against both existing runs and the given
    ``rcv_nxt`` so the queue never holds already-delivered data.
    """

    def __init__(self) -> None:
        self._runs: list[tuple[int, bytes]] = []

    def __len__(self) -> int:
        return len(self._runs)

    @property
    def buffered_bytes(self) -> int:
        """Total payload bytes waiting in the queue."""
        return sum(len(data) for _, data in self._runs)

    def insert(self, seq: int, data, rcv_nxt: int) -> None:
        """Add ``data`` starting at ``seq``, trimming any overlap.

        ``data`` may be a zero-copy view into a received frame; the
        common in-order case stores it as-is.  Only the overlap-merge
        branches materialize bytes (they must splice runs together).
        """
        if not len(data):
            return
        # Trim anything at or below rcv_nxt.
        behind = seq_diff(rcv_nxt, seq)
        if behind > 0:
            if behind >= len(data):
                return
            data = memoryview(data)[behind:]
            seq = rcv_nxt
        end = seq_add(seq, len(data))

        merged: list[tuple[int, bytes]] = []
        for run_seq, run_data in self._runs:
            run_end = seq_add(run_seq, len(run_data))
            if seq_le(run_end, seq) or seq_ge(run_seq, end):
                merged.append((run_seq, run_data))
                continue
            # Overlap: extend the incoming data to cover the union.
            if seq_lt(run_seq, seq):
                prefix_len = seq_diff(seq, run_seq)
                data = bytes(run_data[:prefix_len]) + bytes(data)
                seq = run_seq
            if seq_lt(end, run_end):
                keep_from = seq_diff(end, run_seq)
                data = bytes(data) + bytes(run_data[keep_from:])
                end = run_end
        merged.append((seq, data))
        merged.sort(key=lambda run: seq_diff(run[0], rcv_nxt))
        self._runs = merged

    def extract(self, rcv_nxt: int):
        """Remove and return bytes now contiguous with ``rcv_nxt``.

        The hot in-order case — a single run with nothing stale — hands
        the stored buffer (possibly a view) straight back without
        copying; only multi-run extraction joins."""
        parts: list = []
        cursor = rcv_nxt
        while self._runs:
            run_seq, run_data = self._runs[0]
            if seq_diff(run_seq, cursor) > 0:
                break  # A gap remains before this run.
            self._runs.pop(0)
            skip = seq_diff(cursor, run_seq)
            if skip >= len(run_data):
                continue  # Entirely stale.
            parts.append(
                memoryview(run_data)[skip:] if skip else run_data
            )
            cursor = seq_add(run_seq, len(run_data))
        if not parts:
            return b""
        if len(parts) == 1:
            return parts[0]
        return b"".join(bytes(p) for p in parts)

    def next_gap(self, rcv_nxt: int) -> int | None:
        """Sequence of the first missing byte after queued data, if any."""
        if not self._runs:
            return None
        return self._runs[0][0] if seq_diff(self._runs[0][0], rcv_nxt) > 0 else None
