"""Round-trip timing and retransmission timeout estimation.

Jacobson/Karels smoothed RTT with mean deviation, Karn's rule (never
sample a retransmitted segment), and exponential backoff — the same
algorithm the paper's 4.3BSD-derived stack used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...obs import hist as _hist


@dataclass
class RttEstimator:
    """SRTT/RTTVAR estimator producing the retransmission timeout."""

    #: Clamp bounds for the computed RTO, in seconds.  4.3BSD used a
    #: 500 ms slow-timeout granularity with a 1 s floor.
    min_rto: float = 1.0
    max_rto: float = 64.0
    #: Initial RTO before any sample exists (RFC 1122 suggests 3 s).
    initial_rto: float = 3.0

    srtt: Optional[float] = None
    rttvar: Optional[float] = None
    backoff: int = 0

    # In-flight measurement state (one sample at a time, classic BSD).
    _timed_seq: Optional[int] = None
    _timed_at: float = 0.0

    @property
    def rto(self) -> float:
        """Current retransmission timeout including backoff."""
        if self.srtt is None:
            base = self.initial_rto
        else:
            base = self.srtt + 4.0 * (self.rttvar or 0.0)
        return min(self.max_rto, max(self.min_rto, base) * (1 << self.backoff))

    @property
    def timing(self) -> bool:
        """True while a segment is being timed."""
        return self._timed_seq is not None

    def start_timing(self, seq: int, now: float) -> None:
        """Begin timing the segment whose last byte+1 is ``seq``."""
        if self._timed_seq is None:
            self._timed_seq = seq
            self._timed_at = now

    def cancel_timing(self) -> None:
        """Karn's rule: a retransmission invalidates the pending sample."""
        self._timed_seq = None

    def on_ack(self, ack: int, now: float) -> Optional[float]:
        """Process a cumulative ACK; take an RTT sample if it covers the
        timed segment.  Returns the sample (seconds) when one was taken
        — congestion control (BBR's min-RTT filter) consumes it too."""
        from .seq import seq_ge

        sample = None
        if self._timed_seq is not None and seq_ge(ack, self._timed_seq):
            sample = now - self._timed_at
            self._sample(sample)
            self._timed_seq = None
        # Any ACK of new data ends backoff.
        self.backoff = 0
        return sample if sample is not None and sample >= 0 else None

    def on_retransmit(self) -> None:
        """Exponential backoff; invalidate the sample per Karn."""
        self.cancel_timing()
        if self.rto < self.max_rto:
            self.backoff += 1

    def _sample(self, rtt: float) -> None:
        if rtt < 0:
            return
        reg = _hist.REGISTRY
        if reg is not None:
            reg.record("tcp.rtt", rtt)
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            # Jacobson/Karels gains: 1/8 for srtt, 1/4 for rttvar.
            err = rtt - self.srtt
            self.srtt += err / 8.0
            self.rttvar = (self.rttvar or 0.0) + (abs(err) - (self.rttvar or 0.0)) / 4.0
