"""TCP segments and their wire encoding.

:class:`Segment` is the in-machine representation (header fields +
payload bytes).  :func:`encode_segment` / :func:`decode_segment` convert
to and from real bytes, computing and verifying the genuine
pseudo-header checksum — corrupted segments fail to decode and the
plumbing drops them, exactly as a real input path would.

Encoding is zero-copy: the 20-byte header is built once and *prepended*
onto the caller's payload as a fragment chain (no payload copy), with
the checksum computed over the unjoined parts.  On top of that,
:class:`TcpSegmentEncoder` gives each connection a template fast path —
the previous headers are cached and, when only ack/window moved, patched
with RFC 1624 incremental checksum updates; a retransmission of a cached
segment reuses its header image outright.
"""

from __future__ import annotations

from ...counters import Counters
from dataclasses import dataclass, field
from typing import Optional

from ...net.buf import prepend, slice_view
from ...net.checksum import checksum_parts, incremental_update
from ...net.headers import (
    PROTO_TCP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    HeaderError,
    TcpHeader,
)
from ..checksum import internet_checksum, pseudo_header


class ChecksumError(ValueError):
    """A TCP segment failed its checksum."""


@dataclass(frozen=True)
class Segment:
    """One TCP segment as the protocol machine sees it."""

    sport: int
    dport: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""
    mss: Optional[int] = None

    def __repr__(self) -> str:
        names = []
        for bit, name in (
            (TCP_SYN, "SYN"),
            (TCP_ACK, "ACK"),
            (TCP_FIN, "FIN"),
            (TCP_RST, "RST"),
            (TCP_PSH, "PSH"),
        ):
            if self.flags & bit:
                names.append(name)
        return (
            f"<Segment {self.sport}->{self.dport} "
            f"{'|'.join(names) or 'none'} seq={self.seq} ack={self.ack} "
            f"win={self.window} len={len(self.payload)}>"
        )

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCP_SYN)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & TCP_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCP_RST)

    @property
    def seg_len(self) -> int:
        """Sequence space the segment occupies (SYN and FIN count 1)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def wire_length(self) -> int:
        """Bytes of TCP header + payload on the wire."""
        header = TcpHeader.LENGTH + (4 if self.mss is not None else 0)
        return header + len(self.payload)


def _build_header(segment: Segment, src_ip: int, dst_ip: int) -> bytes:
    """The segment's TCP header bytes with a correct checksum in place."""
    header = TcpHeader(
        sport=segment.sport,
        dport=segment.dport,
        seq=segment.seq,
        ack=segment.ack,
        flags=segment.flags,
        window=segment.window,
        checksum=0,
        mss=segment.mss,
    )
    head = bytearray(header.pack())
    pseudo = pseudo_header(
        src_ip, dst_ip, PROTO_TCP, len(head) + len(segment.payload)
    )
    checksum = checksum_parts(pseudo, head, segment.payload)
    head[16:18] = checksum.to_bytes(2, "big")
    return bytes(head)


def encode_segment(segment: Segment, src_ip: int, dst_ip: int):
    """Serialize with a correct pseudo-header checksum.

    Returns the header prepended onto the *unsliced* payload — a
    fragment chain in zero-copy mode, flat ``bytes`` in eager mode.
    """
    return prepend(_build_header(segment, src_ip, dst_ip), segment.payload)


def decode_segment(data, src_ip: int, dst_ip: int, verify: bool = True) -> Segment:
    """Parse bytes into a :class:`Segment`, verifying the checksum.

    ``data`` may be any bytes-like object; the returned payload is a
    zero-copy view into it.  Raises :class:`ChecksumError` on checksum
    failure and :class:`~repro.net.headers.HeaderError` on malformed
    headers.
    """
    if verify:
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(data))
        if checksum_parts(pseudo, data) != 0:
            raise ChecksumError("TCP checksum mismatch")
    header = TcpHeader.unpack(data)
    payload = slice_view(data, header.header_length)
    return Segment(
        sport=header.sport,
        dport=header.dport,
        seq=header.seq,
        ack=header.ack,
        flags=header.flags,
        window=header.window,
        payload=payload,
        mss=header.mss,
    )


class TcpSegmentEncoder:
    """Per-connection template encoder with an incremental-checksum
    fast path.

    The paper's send path preformats what it can; this encoder goes one
    step further in the spirit of ``netio/template.py``: the header
    image of each recently sent segment is cached under
    ``(seq, len, flags)``.  A retransmission reuses the image outright;
    a segment where only ack/window advanced patches those fields and
    updates the checksum per RFC 1624 instead of resumming header and
    payload.  SYN segments (MSS option changes the header length) take
    the ordinary full-encode path.

    Output is byte-identical to :func:`encode_segment` — the
    equivalence fuzz suite holds it to that.
    """

    #: Cached header images kept per connection (covers the usual
    #: retransmit window without unbounded growth).
    CACHE_DEPTH = 32

    #: Process-wide aggregate across every encoder instance, so
    #: benchmarks can report template hit rates without tracking each
    #: connection object.  Reset alongside the buf copy counters.
    GLOBAL_STATS = {
        "full_encodes": 0,
        "template_patches": 0,
        "retransmit_reuses": 0,
    }

    _ACK_OFF = 8     # 32-bit ack field.
    _WIN_OFF = 14    # 16-bit window field.
    _SUM_OFF = 16    # 16-bit checksum field.

    def __init__(self, sport: int, dport: int, src_ip: int, dst_ip: int) -> None:
        self.sport = sport
        self.dport = dport
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        #: (seq, payload_len, flags) -> [header bytes, payload ref].
        self._cache: dict = {}
        self.stats = Counters()

    def encode(self, segment: Segment):
        """Encode ``segment``; equivalent to :func:`encode_segment`."""
        if (
            segment.mss is not None
            or segment.sport != self.sport
            or segment.dport != self.dport
        ):
            self._bump("full_encodes")
            return encode_segment(segment, self.src_ip, self.dst_ip)

        payload = segment.payload
        key = (segment.seq, len(payload), segment.flags)
        entry = self._cache.get(key)
        if entry is not None and self._same_payload(entry[1], payload):
            head = entry[0]
            patched = self._patch(head, segment)
            if patched is None:
                # Bit-for-bit retransmission: reuse the cached image.
                self._bump("retransmit_reuses")
                return prepend(head, entry[1])
            entry[0] = patched
            self._bump("template_patches")
            return prepend(patched, entry[1])

        head = _build_header(segment, self.src_ip, self.dst_ip)
        self._bump("full_encodes")
        if len(self._cache) >= self.CACHE_DEPTH:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = [head, payload]
        return prepend(head, payload)

    def _bump(self, key: str) -> None:
        self.stats[key] += 1
        TcpSegmentEncoder.GLOBAL_STATS[key] += 1

    @classmethod
    def reset_global_stats(cls) -> None:
        for key in cls.GLOBAL_STATS:
            cls.GLOBAL_STATS[key] = 0

    @staticmethod
    def _same_payload(cached, payload) -> bool:
        return cached is payload or bytes(cached) == bytes(payload)

    def _patch(self, head: bytes, segment: Segment):
        """Header image for ``segment`` from cached ``head``, or ``None``
        if the cached image is already exact."""
        old_ack = head[self._ACK_OFF : self._ACK_OFF + 4]
        old_win = head[self._WIN_OFF : self._WIN_OFF + 2]
        new_ack = segment.ack.to_bytes(4, "big")
        new_win = segment.window.to_bytes(2, "big")
        if old_ack == new_ack and old_win == new_win:
            return None
        checksum = int.from_bytes(head[self._SUM_OFF : self._SUM_OFF + 2], "big")
        patched = bytearray(head)
        if old_ack != new_ack:
            checksum = incremental_update(checksum, old_ack, new_ack)
            patched[self._ACK_OFF : self._ACK_OFF + 4] = new_ack
        if old_win != new_win:
            checksum = incremental_update(checksum, old_win, new_win)
            patched[self._WIN_OFF : self._WIN_OFF + 2] = new_win
        patched[self._SUM_OFF : self._SUM_OFF + 2] = checksum.to_bytes(2, "big")
        return bytes(patched)
