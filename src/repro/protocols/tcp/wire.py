"""TCP segments and their wire encoding.

:class:`Segment` is the in-machine representation (header fields +
payload bytes).  :func:`encode_segment` / :func:`decode_segment` convert
to and from real bytes, computing and verifying the genuine
pseudo-header checksum — corrupted segments fail to decode and the
plumbing drops them, exactly as a real input path would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...net.headers import (
    PROTO_TCP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    HeaderError,
    TcpHeader,
)
from ..checksum import internet_checksum, pseudo_header


class ChecksumError(ValueError):
    """A TCP segment failed its checksum."""


@dataclass(frozen=True)
class Segment:
    """One TCP segment as the protocol machine sees it."""

    sport: int
    dport: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""
    mss: Optional[int] = None

    def __repr__(self) -> str:
        names = []
        for bit, name in (
            (TCP_SYN, "SYN"),
            (TCP_ACK, "ACK"),
            (TCP_FIN, "FIN"),
            (TCP_RST, "RST"),
            (TCP_PSH, "PSH"),
        ):
            if self.flags & bit:
                names.append(name)
        return (
            f"<Segment {self.sport}->{self.dport} "
            f"{'|'.join(names) or 'none'} seq={self.seq} ack={self.ack} "
            f"win={self.window} len={len(self.payload)}>"
        )

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCP_SYN)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & TCP_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCP_RST)

    @property
    def seg_len(self) -> int:
        """Sequence space the segment occupies (SYN and FIN count 1)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def wire_length(self) -> int:
        """Bytes of TCP header + payload on the wire."""
        header = TcpHeader.LENGTH + (4 if self.mss is not None else 0)
        return header + len(self.payload)


def encode_segment(segment: Segment, src_ip: int, dst_ip: int) -> bytes:
    """Serialize with a correct pseudo-header checksum."""
    header = TcpHeader(
        sport=segment.sport,
        dport=segment.dport,
        seq=segment.seq,
        ack=segment.ack,
        flags=segment.flags,
        window=segment.window,
        checksum=0,
        mss=segment.mss,
    )
    body = header.pack() + segment.payload
    pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(body))
    checksum = internet_checksum(pseudo + body)
    return body[:16] + checksum.to_bytes(2, "big") + body[18:]


def decode_segment(data: bytes, src_ip: int, dst_ip: int, verify: bool = True) -> Segment:
    """Parse bytes into a :class:`Segment`, verifying the checksum.

    Raises :class:`ChecksumError` on checksum failure and
    :class:`~repro.net.headers.HeaderError` on malformed headers.
    """
    if verify:
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(data))
        if internet_checksum(pseudo + data) != 0:
            raise ChecksumError("TCP checksum mismatch")
    header = TcpHeader.unpack(data)
    payload = bytes(data[header.header_length :])
    return Segment(
        sport=header.sport,
        dport=header.dport,
        seq=header.seq,
        ack=header.ack,
        flags=header.flags,
        window=header.window,
        payload=payload,
        mss=header.mss,
    )
