"""Output actions from the sans-io TCP machine.

The plumbing (an organization adapter) executes these: emitting segments
through its device path, arming timers on its timer facility, delivering
data to the socket buffer, and surfacing connection lifecycle events.
"""

from __future__ import annotations

from dataclasses import dataclass

from .wire import Segment

#: Timer names the machine uses with SetTimer/CancelTimer.
TIMER_REXMT = "rexmt"
TIMER_PERSIST = "persist"
TIMER_DELACK = "delack"
TIMER_TIME_WAIT = "2msl"
TIMER_CONN = "conn-estab"
TIMER_KEEPALIVE = "keepalive"


class TcpAction:
    """Base class for machine outputs."""


@dataclass(frozen=True)
class EmitSegment(TcpAction):
    """Transmit ``segment`` to the connection's peer."""

    segment: Segment
    #: True when this is a retransmission (organizations may count it).
    retransmit: bool = False


@dataclass(frozen=True)
class DeliverData(TcpAction):
    """In-order payload for the application."""

    data: bytes


@dataclass(frozen=True)
class DeliverFin(TcpAction):
    """The peer finished sending; EOF after all delivered data."""


@dataclass(frozen=True)
class SetTimer(TcpAction):
    """Arm (or re-arm) the named timer ``delay`` seconds from now."""

    name: str
    delay: float


@dataclass(frozen=True)
class CancelTimer(TcpAction):
    """Disarm the named timer if armed."""

    name: str


@dataclass(frozen=True)
class NotifyConnected(TcpAction):
    """Three-way handshake completed; the connection is ESTABLISHED."""


@dataclass(frozen=True)
class NotifyClosed(TcpAction):
    """The connection reached CLOSED; ``reason`` explains how."""

    reason: str  # "done", "reset", "refused", "timeout", "aborted"


@dataclass(frozen=True)
class SendSpaceAvailable(TcpAction):
    """ACKed data freed send-buffer space; blocked writers may resume."""

    nbytes: int
