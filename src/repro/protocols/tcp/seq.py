"""32-bit TCP sequence-number arithmetic (RFC 793 §3.3).

Sequence numbers live on a 2**32 circle; all comparisons are modular.
``seq_diff(a, b)`` is the signed distance from ``b`` to ``a`` and is the
primitive everything else derives from.
"""

from __future__ import annotations

MOD = 1 << 32
HALF = 1 << 31


def seq_add(seq: int, n: int) -> int:
    """``seq + n`` on the sequence circle."""
    return (seq + n) % MOD


def seq_diff(a: int, b: int) -> int:
    """Signed circular distance ``a - b`` in ``[-2**31, 2**31)``."""
    d = (a - b) % MOD
    if d >= HALF:
        d -= MOD
    return d


def seq_lt(a: int, b: int) -> bool:
    """``a < b`` modulo 2**32."""
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    """``a <= b`` modulo 2**32."""
    return seq_diff(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    """``a > b`` modulo 2**32."""
    return seq_diff(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    """``a >= b`` modulo 2**32."""
    return seq_diff(a, b) >= 0


def seq_between(low: int, x: int, high: int) -> bool:
    """``low <= x < high`` on the circle (empty if low == high)."""
    return seq_le(low, x) and seq_lt(x, high)


def seq_max(a: int, b: int) -> int:
    """The later of two sequence numbers."""
    return a if seq_ge(a, b) else b

def seq_min(a: int, b: int) -> int:
    """The earlier of two sequence numbers."""
    return a if seq_le(a, b) else b
