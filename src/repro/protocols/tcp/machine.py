"""The sans-io TCP protocol machine.

:class:`TcpMachine` implements the full RFC 793 state machine with the
4.3BSD additions the paper's stack had: Jacobson/Karels RTT estimation,
Karn's rule, exponential backoff, slow start and congestion avoidance,
fast retransmit (optionally Reno fast recovery), delayed ACKs, Nagle's
algorithm, sender silly-window avoidance, zero-window persist probes,
and 2MSL TIME-WAIT.

The machine is *sans-io*: it owns no clock, no sockets, no threads.  It
consumes :mod:`events <repro.protocols.tcp.events>` (each call supplies
``now``) and returns :mod:`actions <repro.protocols.tcp.actions>` for
the caller to execute.  That is what lets the very same protocol code
run inside the in-kernel, single-server, dedicated-server, and
user-level-library organizations — the paper's "apples to apples"
methodology — and lets tests drive it deterministically.
"""

from __future__ import annotations

from typing import Optional

from ...net.headers import TCP_ACK, TCP_FIN, TCP_PSH, TCP_RST, TCP_SYN
from .actions import (
    CancelTimer,
    DeliverData,
    DeliverFin,
    EmitSegment,
    NotifyClosed,
    NotifyConnected,
    SendSpaceAvailable,
    SetTimer,
    TcpAction,
    TIMER_CONN,
    TIMER_DELACK,
    TIMER_KEEPALIVE,
    TIMER_PERSIST,
    TIMER_REXMT,
    TIMER_TIME_WAIT,
)
from .events import (
    AppAbort,
    AppClose,
    AppRead,
    AppSend,
    SegmentArrives,
    TcpInputEvent,
    TimerExpires,
)
from .seq import seq_add, seq_diff, seq_ge, seq_gt, seq_le, seq_lt, seq_max
from .tcb import State, SYNCHRONIZED_STATES, Tcb, TcpConfig
from .wire import Segment


class TcpError(Exception):
    """API misuse (e.g. sending on a closed connection)."""


class TcpMachine:
    """One TCP connection endpoint."""

    def __init__(
        self,
        local_port: int,
        remote_port: int = 0,
        config: Optional[TcpConfig] = None,
        iss: int = 0,
    ) -> None:
        self.tcb = Tcb(
            local_port=local_port,
            remote_port=remote_port,
            config=config or TcpConfig(),
            iss=iss,
        )
        #: Statistics for tests and benchmarks.
        self.stats: dict[str, int] = {
            "segments_sent": 0,
            "segments_received": 0,
            "retransmits": 0,
            "fast_retransmits": 0,
            "dup_acks_received": 0,
            "bytes_delivered": 0,
            "bytes_sent": 0,
            "probes_sent": 0,
            "acks_delayed": 0,
            "fastpath_ack_hits": 0,
            "fastpath_data_hits": 0,
            "fastpath_misses": 0,
        }
        self._transitions: list[tuple[State, State]] = []
        #: Congestion-event log for the ``cc-sanity`` invariant: one
        #: dict per convicted loss recording the window response.
        self.cc_events: list[dict] = []

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def state(self) -> State:
        return self.tcb.state

    @property
    def transitions(self) -> list[tuple[State, State]]:
        """State transitions observed so far (for tests)."""
        return list(self._transitions)

    def open(self, now: float, active: bool = True) -> list[TcpAction]:
        """Begin the connection: SYN for active, LISTEN for passive."""
        if self.tcb.state is not State.CLOSED:
            raise TcpError(f"open in state {self.tcb.state}")
        tcb = self.tcb
        actions: list[TcpAction] = []
        if not active:
            self._set_state(State.LISTEN)
            return actions
        if tcb.remote_port == 0:
            raise TcpError("active open requires a remote port")
        tcb.snd_una = tcb.iss
        tcb.snd_nxt = tcb.iss
        tcb.snd_max = tcb.iss
        tcb.buf_base = seq_add(tcb.iss, 1)
        self._set_state(State.SYN_SENT)
        self._emit_syn(actions, with_ack=False)
        actions.append(SetTimer(TIMER_REXMT, tcb.rtt.rto))
        actions.append(SetTimer(TIMER_CONN, tcb.config.conn_timeout))
        return actions

    def handle(self, event: TcpInputEvent, now: float) -> list[TcpAction]:
        """Feed one input event; returns the actions to execute."""
        if isinstance(event, SegmentArrives):
            self.stats["segments_received"] += 1
            return self._segment_arrives(event.segment, now)
        if isinstance(event, AppSend):
            return self._app_send(event.data, now)
        if isinstance(event, AppRead):
            return self._app_read(event.nbytes, now)
        if isinstance(event, AppClose):
            return self._app_close(now)
        if isinstance(event, AppAbort):
            return self._app_abort(now)
        if isinstance(event, TimerExpires):
            return self._timer_expires(event.name, now)
        raise TcpError(f"unknown event {event!r}")

    #: Flags compatible with header prediction: ACK required, PSH
    #: tolerated, anything else (SYN/FIN/RST/URG) disqualifies.
    _PREDICTED_FLAGS = TCP_ACK | TCP_PSH

    def fast_input(self, segment: Segment, now: float) -> Optional[list[TcpAction]]:
        """Header prediction (Van Jacobson): the receive fast path.

        One comparison row decides whether ``segment`` is the *expected*
        next segment of an ESTABLISHED connection — flags carry nothing
        beyond ACK|PSH, the sequence number is exactly ``rcv_nxt``, and
        the advertised window is unchanged.  Two shapes then qualify:

        * a **pure ACK** advancing ``snd_una`` within what we have sent
          (the sender side of a bulk transfer), and
        * **next-in-sequence data** whose ACK advances nothing, fitting
          the receive window while the reassembly queue is empty (the
          receiver side).

        Hits run the short path below — the very same bookkeeping
        helpers the slow path uses, in the same order, so the emitted
        action list is identical; the full :meth:`handle` machinery
        (event dispatch, acceptability tests, reassembly, FIN and state
        transitions) is skipped, not approximated.  Anything else
        returns ``None`` and the caller falls back to :meth:`handle`
        unchanged.  The golden wire digests and the fuzz equivalence
        suite pin the identity.
        """
        tcb = self.tcb
        flags = segment.flags
        if (
            tcb.state is not State.ESTABLISHED
            or not tcb.config.header_prediction
            or flags & ~self._PREDICTED_FLAGS
            or not flags & TCP_ACK
            or segment.seq != tcb.rcv_nxt
        ):
            self.stats["fastpath_misses"] += 1
            return None
        payload = segment.payload
        ack = segment.ack
        advancing = False
        if not payload:
            # Pure-ACK arm: either snd_una advances through sent
            # territory, or a bare window update (ack == snd_una) that
            # the slow path's duplicate-ACK test — which needs an
            # unchanged window and data in flight — provably ignores.
            # A countable duplicate ACK deliberately misses: its
            # fast-retransmit accounting belongs to the slow path.
            advancing = seq_gt(ack, tcb.snd_una) and seq_le(ack, tcb.snd_max)
            if not advancing and not (
                ack == tcb.snd_una
                and not (segment.window == tcb.snd_wnd and tcb.flight_size > 0)
            ):
                self.stats["fastpath_misses"] += 1
                return None
            self.stats["fastpath_ack_hits"] += 1
        elif (
            ack != tcb.snd_una
            or len(payload) > tcb.rcv_wnd
            or len(tcb.reassembly)
        ):
            self.stats["fastpath_misses"] += 1
            return None
        else:
            self.stats["fastpath_data_hits"] += 1

        self.stats["segments_received"] += 1
        tcb.last_heard = now
        tcb.keepalive_count = 0
        actions: list[TcpAction] = []
        if advancing:
            self._ack_advances(ack, actions, now)
        # Window-update bookkeeping, verbatim from the slow path (RFC
        # 793 p.72).  Unlike BSD's fast path this one does not demand an
        # unchanged window — the receiver's advertised window breathes
        # with every app read, and the full update block (snd_wl1/wl2
        # refresh plus the zero-window persist cancel) costs one
        # comparison to replicate exactly.
        if seq_lt(tcb.snd_wl1, segment.seq) or (
            tcb.snd_wl1 == segment.seq and seq_le(tcb.snd_wl2, ack)
        ):
            old_wnd = tcb.snd_wnd
            tcb.snd_wnd = segment.window
            tcb.snd_wl1 = segment.seq
            tcb.snd_wl2 = ack
            if old_wnd == 0 and tcb.snd_wnd > 0:
                tcb.persist_shift = 0
                actions.append(CancelTimer(TIMER_PERSIST))
        if payload:
            # Direct delivery: with an empty queue, _process_payload's
            # insert/extract round trip returns ``payload`` itself.
            tcb.rcv_nxt = seq_add(tcb.rcv_nxt, len(payload))
            tcb.rcv_user += len(payload)
            self.stats["bytes_delivered"] += len(payload)
            actions.append(DeliverData(payload))
            if tcb.delack_pending:
                tcb.delack_pending = False
                actions.append(CancelTimer(TIMER_DELACK))
                self._emit_ack(actions)
            else:
                tcb.delack_pending = True
                self.stats["acks_delayed"] += 1
                actions.append(SetTimer(TIMER_DELACK, tcb.config.delack_time))
        self._try_output(actions, now)
        return actions

    # ------------------------------------------------------------------
    # State bookkeeping
    # ------------------------------------------------------------------

    def _set_state(self, new: State) -> None:
        old = self.tcb.state
        if old is not new:
            self._transitions.append((old, new))
            self.tcb.state = new

    #: cc_events cap: enough for any test run, bounded for long sims.
    MAX_CC_EVENTS = 4096

    def _note_cc_event(self, kind: str, now: float, cwnd_before: int, flight: int) -> None:
        """Record one convicted loss and the algorithm's response."""
        if len(self.cc_events) >= self.MAX_CC_EVENTS:
            return
        cc = self.tcb.cc
        self.cc_events.append(
            {
                "time": now,
                "kind": kind,
                "cwnd_before": cwnd_before,
                "cwnd_after": cc.cwnd,
                "ssthresh_after": cc.ssthresh,
                "flight": flight,
                "mss": self.tcb.mss,
                "loss_based": getattr(cc, "loss_based", True),
            }
        )

    # ------------------------------------------------------------------
    # Segment construction helpers
    # ------------------------------------------------------------------

    def _advertised_window(self) -> int:
        tcb = self.tcb
        # The window field is 16 bits and this stack predates window
        # scaling (RFC 1323), so large buffers clamp at 65535.
        window = min(tcb.rcv_wnd, 0xFFFF)
        tcb.rcv_adv = seq_add(tcb.rcv_nxt, window)
        return window

    def _emit(
        self,
        actions: list[TcpAction],
        seq: int,
        flags: int,
        payload: bytes = b"",
        mss: Optional[int] = None,
        ack_override: Optional[int] = None,
        retransmit: bool = False,
    ) -> None:
        tcb = self.tcb
        ack = 0
        if flags & TCP_ACK:
            ack = tcb.rcv_nxt if ack_override is None else ack_override
        segment = Segment(
            sport=tcb.local_port,
            dport=tcb.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=self._advertised_window(),
            payload=payload,
            mss=mss,
        )
        self.stats["segments_sent"] += 1
        self.stats["bytes_sent"] += len(payload)
        if retransmit:
            self.stats["retransmits"] += 1
        actions.append(EmitSegment(segment, retransmit=retransmit))
        # Any segment carrying an ACK satisfies a pending delayed ACK.
        if flags & TCP_ACK and tcb.delack_pending:
            tcb.delack_pending = False
            actions.append(CancelTimer(TIMER_DELACK))

    def _emit_syn(self, actions: list[TcpAction], with_ack: bool, retransmit: bool = False) -> None:
        tcb = self.tcb
        flags = TCP_SYN | (TCP_ACK if with_ack else 0)
        self._emit(
            actions,
            seq=tcb.iss,
            flags=flags,
            mss=tcb.config.mss,
            retransmit=retransmit,
        )
        tcb.snd_nxt = seq_max(tcb.snd_nxt, seq_add(tcb.iss, 1))
        tcb.snd_max = seq_max(tcb.snd_max, tcb.snd_nxt)

    def _emit_ack(self, actions: list[TcpAction]) -> None:
        self._emit(actions, seq=self.tcb.snd_nxt, flags=TCP_ACK)

    def _emit_rst_for(self, segment: Segment, actions: list[TcpAction]) -> None:
        """RST in response to an unacceptable segment (RFC 793 p.36)."""
        if segment.rst:
            return
        if segment.has_ack:
            rst = Segment(
                sport=self.tcb.local_port,
                dport=self.tcb.remote_port or segment.sport,
                seq=segment.ack,
                ack=0,
                flags=TCP_RST,
                window=0,
            )
        else:
            rst = Segment(
                sport=self.tcb.local_port,
                dport=self.tcb.remote_port or segment.sport,
                seq=0,
                ack=seq_add(segment.seq, segment.seg_len),
                flags=TCP_RST | TCP_ACK,
                window=0,
            )
        self.stats["segments_sent"] += 1
        actions.append(EmitSegment(rst))

    # ------------------------------------------------------------------
    # Application events
    # ------------------------------------------------------------------

    def _app_send(self, data: bytes, now: float) -> list[TcpAction]:
        tcb = self.tcb
        if tcb.state in (
            State.CLOSED,
            State.LISTEN,
            State.FIN_WAIT_1,
            State.FIN_WAIT_2,
            State.CLOSING,
            State.LAST_ACK,
            State.TIME_WAIT,
        ):
            raise TcpError(f"send in state {tcb.state}")
        if tcb.fin_pending:
            raise TcpError("send after close")
        if len(data) > tcb.send_buffer_space:
            raise TcpError(
                f"send of {len(data)} bytes exceeds buffer space "
                f"({tcb.send_buffer_space}); callers must respect "
                "send_buffer_space"
            )
        tcb.send_buffer.extend(data)
        actions: list[TcpAction] = []
        if tcb.state in (State.ESTABLISHED, State.CLOSE_WAIT):
            self._try_output(actions, now)
        return actions

    def _app_read(self, nbytes: int, now: float) -> list[TcpAction]:
        tcb = self.tcb
        if nbytes < 0 or nbytes > tcb.rcv_user:
            raise TcpError(f"read of {nbytes} bytes; {tcb.rcv_user} delivered")
        tcb.rcv_user -= nbytes
        actions: list[TcpAction] = []
        # Receiver silly-window avoidance: only announce a window update
        # when it opens the advertised edge by >= 2 segments or half the
        # buffer (BSD's rule).
        opening = seq_diff(seq_add(tcb.rcv_nxt, tcb.rcv_wnd), tcb.rcv_adv)
        if tcb.state in SYNCHRONIZED_STATES and opening >= min(
            2 * tcb.mss, tcb.config.rcv_buffer // 2
        ):
            self._emit_ack(actions)
        return actions

    def _app_close(self, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        if tcb.state is State.CLOSED:
            return actions
        if tcb.state is State.LISTEN:
            self._set_state(State.CLOSED)
            actions.append(NotifyClosed("done"))
            return actions
        if tcb.state is State.SYN_SENT:
            self._set_state(State.CLOSED)
            actions.append(CancelTimer(TIMER_REXMT))
            actions.append(CancelTimer(TIMER_CONN))
            actions.append(NotifyClosed("done"))
            return actions
        if tcb.fin_pending or tcb.fin_sent:
            return actions  # Already closing.
        tcb.fin_pending = True
        self._try_output(actions, now)
        return actions

    def _app_abort(self, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        if tcb.state in SYNCHRONIZED_STATES or tcb.state is State.SYN_RCVD:
            self._emit(actions, seq=tcb.snd_nxt, flags=TCP_RST)
        self._teardown(actions, "aborted")
        return actions

    def _teardown(self, actions: list[TcpAction], reason: str) -> None:
        tcb = self.tcb
        tcb.send_buffer.clear()
        self._set_state(State.CLOSED)
        for name in (
            TIMER_REXMT,
            TIMER_PERSIST,
            TIMER_DELACK,
            TIMER_CONN,
            TIMER_TIME_WAIT,
            TIMER_KEEPALIVE,
        ):
            actions.append(CancelTimer(name))
        actions.append(NotifyClosed(reason))

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _timer_expires(self, name: str, now: float) -> list[TcpAction]:
        if name == TIMER_REXMT:
            return self._on_rexmt(now)
        if name == TIMER_PERSIST:
            return self._on_persist(now)
        if name == TIMER_DELACK:
            return self._on_delack(now)
        if name == TIMER_TIME_WAIT:
            return self._on_time_wait(now)
        if name == TIMER_CONN:
            return self._on_conn_timeout(now)
        if name == TIMER_KEEPALIVE:
            return self._on_keepalive(now)
        raise TcpError(f"unknown timer {name!r}")

    def _on_rexmt(self, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        if tcb.state is State.CLOSED or tcb.state is State.TIME_WAIT:
            return actions
        tcb.rexmt_count += 1
        if tcb.rexmt_count > tcb.config.max_retransmits:
            self._teardown(actions, "timeout")
            return actions
        tcb.rtt.on_retransmit()
        flight = tcb.flight_size
        cwnd_before = tcb.cc.cwnd
        tcb.cc.on_timeout(flight, now)
        self._note_cc_event("timeout", now, cwnd_before, flight)
        self._retransmit_head(actions, now)
        actions.append(SetTimer(TIMER_REXMT, tcb.rtt.rto))
        return actions

    def _retransmit_head(self, actions: list[TcpAction], now: float) -> None:
        """Resend whatever sits at snd_una: SYN, data, or FIN."""
        tcb = self.tcb
        if tcb.state is State.SYN_SENT:
            self._emit_syn(actions, with_ack=False, retransmit=True)
            return
        if tcb.state is State.SYN_RCVD:
            self._emit_syn(actions, with_ack=True, retransmit=True)
            return
        offset = seq_diff(tcb.snd_una, tcb.buf_base)
        if offset < 0:
            # snd_una still covers our SYN (shouldn't happen outside the
            # handshake states, but be safe).
            self._emit_syn(actions, with_ack=True, retransmit=True)
            return
        chunk = bytes(tcb.send_buffer[offset : offset + tcb.mss])
        if chunk:
            flags = TCP_ACK
            end = seq_add(tcb.snd_una, len(chunk))
            fin_too = (
                tcb.fin_sent
                and tcb.fin_seq is not None
                and end == tcb.fin_seq
                and offset + len(chunk) == len(tcb.send_buffer)
            )
            if fin_too:
                flags |= TCP_FIN  # Piggyback the FIN retransmission.
                end = seq_add(end, 1)
            self._emit(actions, seq=tcb.snd_una, flags=flags, payload=chunk, retransmit=True)
            # The retransmission may coalesce bytes never sent before
            # (small writes that arrived after the original segment);
            # sequence bookkeeping must cover them.
            tcb.snd_nxt = seq_max(tcb.snd_nxt, end)
            tcb.snd_max = seq_max(tcb.snd_max, end)
        elif tcb.fin_sent and tcb.fin_seq is not None:
            self._emit(actions, seq=tcb.fin_seq, flags=TCP_FIN | TCP_ACK, retransmit=True)
        else:
            # Nothing outstanding; pure ACK keeps the peer in sync.
            self._emit_ack(actions)

    def _on_persist(self, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        if tcb.state not in (State.ESTABLISHED, State.CLOSE_WAIT, State.FIN_WAIT_1, State.CLOSING):
            return actions
        if tcb.snd_wnd > 0:
            tcb.persist_shift = 0
            self._try_output(actions, now)
            return actions
        # Send a one-byte window probe beyond the zero window.
        offset = seq_diff(tcb.snd_nxt, tcb.buf_base)
        if 0 <= offset < len(tcb.send_buffer):
            probe = bytes(tcb.send_buffer[offset : offset + 1])
            self.stats["probes_sent"] += 1
            self._emit(actions, seq=tcb.snd_nxt, flags=TCP_ACK, payload=probe)
            tcb.snd_nxt = seq_add(tcb.snd_nxt, 1)
            tcb.snd_max = seq_max(tcb.snd_max, tcb.snd_nxt)
        elif tcb.fin_pending and not tcb.fin_sent and tcb.unsent_bytes == 0:
            # The only thing left to probe with is the FIN itself.
            self._send_fin(actions)
        tcb.persist_shift = min(tcb.persist_shift + 1, 6)
        actions.append(SetTimer(TIMER_PERSIST, self._persist_interval()))
        return actions

    def _persist_interval(self) -> float:
        base = max(self.tcb.rtt.rto, 1.0)
        return min(base * (1 << self.tcb.persist_shift), 60.0)

    def _on_delack(self, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        if tcb.delack_pending and tcb.state in SYNCHRONIZED_STATES:
            tcb.delack_pending = False
            self._emit_ack(actions)
        return actions

    def _on_time_wait(self, now: float) -> list[TcpAction]:
        actions: list[TcpAction] = []
        if self.tcb.state is State.TIME_WAIT:
            self._set_state(State.CLOSED)
            actions.append(NotifyClosed("done"))
        return actions

    def _on_conn_timeout(self, now: float) -> list[TcpAction]:
        actions: list[TcpAction] = []
        if self.tcb.state in (State.SYN_SENT, State.SYN_RCVD):
            self._teardown(actions, "timeout")
        return actions

    def _arm_keepalive(self, actions: list[TcpAction]) -> None:
        if self.tcb.config.keepalive:
            actions.append(
                SetTimer(TIMER_KEEPALIVE, self.tcb.config.keepalive_idle)
            )

    def _on_keepalive(self, now: float) -> list[TcpAction]:
        """BSD keepalive: probe an idle connection with a segment one
        byte below snd_una; a live peer answers with an ACK."""
        tcb = self.tcb
        actions: list[TcpAction] = []
        if not tcb.config.keepalive or tcb.state is not State.ESTABLISHED:
            return actions
        idle = now - tcb.last_heard
        remaining = tcb.config.keepalive_idle - idle
        # The epsilon guards against a zero-delay re-arm loop when float
        # subtraction leaves the idle time infinitesimally short.
        if remaining > 1e-6 and tcb.keepalive_count == 0:
            # Activity since arming: re-arm for the remaining idle time.
            actions.append(SetTimer(TIMER_KEEPALIVE, remaining))
            return actions
        if tcb.keepalive_count >= tcb.config.keepalive_probes:
            self._teardown(actions, "timeout")
            return actions
        tcb.keepalive_count += 1
        self.stats["probes_sent"] += 1
        # The classic garbage-seq probe: seq = snd_una - 1, no data.
        self._emit(
            actions, seq=seq_add(tcb.snd_una, -1), flags=TCP_ACK
        )
        actions.append(
            SetTimer(TIMER_KEEPALIVE, tcb.config.keepalive_interval)
        )
        return actions

    # ------------------------------------------------------------------
    # Segment arrival: RFC 793 pp. 64-76
    # ------------------------------------------------------------------

    def _segment_arrives(self, segment: Segment, now: float) -> list[TcpAction]:
        self.tcb.last_heard = now
        self.tcb.keepalive_count = 0
        state = self.tcb.state
        if state is State.CLOSED:
            actions: list[TcpAction] = []
            self._emit_rst_for(segment, actions)
            return actions
        if state is State.LISTEN:
            return self._arrives_listen(segment, now)
        if state is State.SYN_SENT:
            return self._arrives_syn_sent(segment, now)
        return self._arrives_synchronized(segment, now)

    def _arrives_listen(self, segment: Segment, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        if segment.rst:
            return actions
        if segment.has_ack:
            self._emit_rst_for(segment, actions)
            return actions
        if not segment.syn:
            return actions
        # Passive open proceeds.
        tcb.remote_port = segment.sport if tcb.remote_port == 0 else tcb.remote_port
        tcb.irs = segment.seq
        tcb.rcv_nxt = seq_add(segment.seq, 1)
        tcb.rcv_adv = tcb.rcv_nxt
        tcb.peer_mss = segment.mss
        tcb.cc.set_mss(tcb.mss)
        tcb.snd_wnd = segment.window
        tcb.snd_wl1 = segment.seq
        tcb.snd_wl2 = 0
        tcb.snd_una = tcb.iss
        tcb.snd_nxt = tcb.iss
        tcb.snd_max = tcb.iss
        tcb.buf_base = seq_add(tcb.iss, 1)
        self._set_state(State.SYN_RCVD)
        self._emit_syn(actions, with_ack=True)
        actions.append(SetTimer(TIMER_REXMT, tcb.rtt.rto))
        actions.append(SetTimer(TIMER_CONN, tcb.config.conn_timeout))
        return actions

    def _arrives_syn_sent(self, segment: Segment, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []
        ack_acceptable = False
        if segment.has_ack:
            if seq_le(segment.ack, tcb.iss) or seq_gt(segment.ack, tcb.snd_nxt):
                self._emit_rst_for(segment, actions)
                return actions
            ack_acceptable = True
        if segment.rst:
            if ack_acceptable:
                self._teardown(actions, "refused")
            return actions
        if not segment.syn:
            return actions

        tcb.irs = segment.seq
        tcb.rcv_nxt = seq_add(segment.seq, 1)
        tcb.rcv_adv = tcb.rcv_nxt
        tcb.peer_mss = segment.mss
        tcb.cc.set_mss(tcb.mss)
        if segment.has_ack:
            self._ack_advances(segment.ack, actions, now)
        tcb.snd_wnd = segment.window
        tcb.snd_wl1 = segment.seq
        tcb.snd_wl2 = segment.ack
        if seq_gt(tcb.snd_una, tcb.iss):
            # Our SYN is acknowledged: connection established.
            self._set_state(State.ESTABLISHED)
            actions.append(CancelTimer(TIMER_REXMT))
            actions.append(CancelTimer(TIMER_CONN))
            actions.append(NotifyConnected())
            self._arm_keepalive(actions)
            self._emit_ack(actions)
            self._try_output(actions, now)
        else:
            # Simultaneous open.
            self._set_state(State.SYN_RCVD)
            self._emit_syn(actions, with_ack=True, retransmit=True)
        return actions

    def _acceptable(self, segment: Segment) -> bool:
        """RFC 793 p.69 sequence acceptability test."""
        tcb = self.tcb
        wnd = tcb.rcv_wnd
        seg_len = segment.seg_len
        seq = segment.seq
        if seg_len == 0 and wnd == 0:
            return seq == tcb.rcv_nxt
        if seg_len == 0:
            return seq_le(tcb.rcv_nxt, seq) and seq_lt(seq, seq_add(tcb.rcv_nxt, wnd))
        if wnd == 0:
            return False
        first_ok = seq_le(tcb.rcv_nxt, seq) and seq_lt(seq, seq_add(tcb.rcv_nxt, wnd))
        last = seq_add(seq, seg_len - 1)
        last_ok = seq_le(tcb.rcv_nxt, last) and seq_lt(last, seq_add(tcb.rcv_nxt, wnd))
        return first_ok or last_ok

    def _arrives_synchronized(self, segment: Segment, now: float) -> list[TcpAction]:
        tcb = self.tcb
        actions: list[TcpAction] = []

        # Step 1: sequence acceptability.
        if not self._acceptable(segment):
            if not segment.rst:
                self._emit_ack(actions)
            return actions

        # Step 2: RST processing.
        if segment.rst:
            if tcb.state is State.SYN_RCVD:
                self._teardown(actions, "refused")
            else:
                self._teardown(actions, "reset")
            return actions

        # Step 4: SYN in window is an error.
        if segment.syn and seq_ge(segment.seq, tcb.rcv_nxt):
            self._emit(actions, seq=tcb.snd_nxt, flags=TCP_RST)
            self._teardown(actions, "reset")
            return actions

        # Step 5: ACK processing.
        if not segment.has_ack:
            return actions

        if tcb.state is State.SYN_RCVD:
            if seq_le(tcb.snd_una, segment.ack) and seq_le(segment.ack, tcb.snd_nxt):
                self._set_state(State.ESTABLISHED)
                actions.append(CancelTimer(TIMER_CONN))
                actions.append(NotifyConnected())
                self._arm_keepalive(actions)
                tcb.snd_wnd = segment.window
                tcb.snd_wl1 = segment.seq
                tcb.snd_wl2 = segment.ack
            else:
                self._emit_rst_for(segment, actions)
                return actions

        if seq_gt(segment.ack, tcb.snd_max):
            # ACK for data never sent.
            self._emit_ack(actions)
            return actions

        if seq_gt(segment.ack, tcb.snd_una):
            self._ack_advances(segment.ack, actions, now)
        elif (
            segment.ack == tcb.snd_una
            and not segment.payload
            and segment.window == tcb.snd_wnd
            and tcb.flight_size > 0
        ):
            self.stats["dup_acks_received"] += 1
            flight = tcb.flight_size
            cwnd_before = tcb.cc.cwnd
            if tcb.cc.on_duplicate_ack(flight, now):
                self.stats["fast_retransmits"] += 1
                self._note_cc_event(
                    "fast_retransmit", now, cwnd_before, flight
                )
                tcb.rtt.cancel_timing()  # Karn: retransmitted data.
                self._fast_retransmit(actions, now)

        # Window update (RFC 793 p.72).
        if seq_lt(tcb.snd_wl1, segment.seq) or (
            tcb.snd_wl1 == segment.seq and seq_le(tcb.snd_wl2, segment.ack)
        ):
            old_wnd = tcb.snd_wnd
            tcb.snd_wnd = segment.window
            tcb.snd_wl1 = segment.seq
            tcb.snd_wl2 = segment.ack
            if old_wnd == 0 and tcb.snd_wnd > 0:
                tcb.persist_shift = 0
                actions.append(CancelTimer(TIMER_PERSIST))

        # FIN-driven state machine advances that depend on our FIN being
        # acknowledged are handled inside _ack_advances.

        # Step 7: payload processing.
        if segment.payload and tcb.state in (
            State.ESTABLISHED,
            State.FIN_WAIT_1,
            State.FIN_WAIT_2,
        ):
            self._process_payload(segment, actions)

        # Step 8: FIN processing.
        if segment.fin:
            self._process_fin(segment, actions, now)

        # Try to move data (window may have opened, ACK freed buffer...).
        if tcb.state in (
            State.ESTABLISHED,
            State.CLOSE_WAIT,
            State.FIN_WAIT_1,
            State.CLOSING,
            State.LAST_ACK,
        ):
            self._try_output(actions, now)
        return actions

    # ------------------------------------------------------------------
    # ACK bookkeeping
    # ------------------------------------------------------------------

    def _ack_advances(self, ack: int, actions: list[TcpAction], now: float) -> None:
        """Process a cumulative ACK advancing snd_una to ``ack``."""
        tcb = self.tcb
        acked = seq_diff(ack, tcb.snd_una)
        if acked <= 0:
            return
        rtt_sample = tcb.rtt.on_ack(ack, now)
        if rtt_sample is not None:
            tcb.cc.on_rtt_sample(rtt_sample, now)
        tcb.cc.on_new_ack(acked, now, max(0, tcb.flight_size - acked))
        tcb.snd_una = ack
        tcb.rexmt_count = 0

        # Drop acknowledged bytes from the send buffer.
        drop = seq_diff(ack, tcb.buf_base)
        drop = min(max(0, drop), len(tcb.send_buffer))
        if drop:
            del tcb.send_buffer[:drop]
            tcb.buf_base = seq_add(tcb.buf_base, drop)
            actions.append(SendSpaceAvailable(drop))

        if seq_lt(tcb.snd_nxt, tcb.snd_una):
            tcb.snd_nxt = tcb.snd_una

        # Retransmission timer: restart while data remains outstanding.
        if tcb.flight_size > 0:
            actions.append(SetTimer(TIMER_REXMT, tcb.rtt.rto))
        else:
            actions.append(CancelTimer(TIMER_REXMT))

        # Our FIN acknowledged?
        if (
            tcb.fin_sent
            and tcb.fin_seq is not None
            and seq_gt(ack, tcb.fin_seq)
        ):
            if tcb.state is State.FIN_WAIT_1:
                self._set_state(State.FIN_WAIT_2)
            elif tcb.state is State.CLOSING:
                self._enter_time_wait(actions)
            elif tcb.state is State.LAST_ACK:
                self._set_state(State.CLOSED)
                for name in (TIMER_REXMT, TIMER_PERSIST, TIMER_DELACK):
                    actions.append(CancelTimer(name))
                actions.append(NotifyClosed("done"))

    def _fast_retransmit(self, actions: list[TcpAction], now: float) -> None:
        self._retransmit_head(actions, now)
        actions.append(SetTimer(TIMER_REXMT, self.tcb.rtt.rto))

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _process_payload(self, segment: Segment, actions: list[TcpAction]) -> None:
        tcb = self.tcb
        if segment.seq != tcb.rcv_nxt:
            # Out of order: queue it and ACK immediately so the sender
            # sees duplicate ACKs (fast-retransmit trigger).
            tcb.reassembly.insert(segment.seq, segment.payload, tcb.rcv_nxt)
            self._emit_ack(actions)
            return
        # Trim to the advertised window before accepting.
        payload = segment.payload[: max(0, tcb.rcv_wnd)]
        if not payload:
            self._emit_ack(actions)
            return
        tcb.reassembly.insert(segment.seq, payload, tcb.rcv_nxt)
        data = tcb.reassembly.extract(tcb.rcv_nxt)
        tcb.rcv_nxt = seq_add(tcb.rcv_nxt, len(data))
        tcb.rcv_user += len(data)
        self.stats["bytes_delivered"] += len(data)
        actions.append(DeliverData(data))
        # Delayed ACK: every second segment, or after delack_time.
        if tcb.delack_pending:
            tcb.delack_pending = False
            actions.append(CancelTimer(TIMER_DELACK))
            self._emit_ack(actions)
        else:
            tcb.delack_pending = True
            self.stats["acks_delayed"] += 1
            actions.append(SetTimer(TIMER_DELACK, tcb.config.delack_time))

    def _process_fin(self, segment: Segment, actions: list[TcpAction], now: float) -> None:
        tcb = self.tcb
        if tcb.state in (State.CLOSED, State.LISTEN, State.SYN_SENT):
            return
        fin_seq = seq_add(segment.seq, len(segment.payload))
        if tcb.rcv_nxt != fin_seq:
            return  # Data before the FIN is still missing; don't advance.
        if not tcb.fin_rcvd:
            tcb.fin_rcvd = True
            tcb.rcv_nxt = seq_add(tcb.rcv_nxt, 1)
            actions.append(DeliverFin())
        self._emit_ack(actions)
        if tcb.state is State.ESTABLISHED:
            self._set_state(State.CLOSE_WAIT)
        elif tcb.state is State.FIN_WAIT_1:
            # Our FIN not yet acked (else we'd be in FIN_WAIT_2).
            self._set_state(State.CLOSING)
        elif tcb.state is State.FIN_WAIT_2:
            self._enter_time_wait(actions)
        elif tcb.state is State.TIME_WAIT:
            actions.append(SetTimer(TIMER_TIME_WAIT, 2 * tcb.config.msl))

    def _enter_time_wait(self, actions: list[TcpAction]) -> None:
        self._set_state(State.TIME_WAIT)
        for name in (TIMER_REXMT, TIMER_PERSIST, TIMER_DELACK, TIMER_KEEPALIVE):
            actions.append(CancelTimer(name))
        actions.append(SetTimer(TIMER_TIME_WAIT, 2 * self.tcb.config.msl))

    # ------------------------------------------------------------------
    # Output engine (tcp_output)
    # ------------------------------------------------------------------

    def _try_output(self, actions: list[TcpAction], now: float) -> None:
        tcb = self.tcb
        if tcb.state not in (
            State.ESTABLISHED,
            State.CLOSE_WAIT,
            State.FIN_WAIT_1,
            State.CLOSING,
            State.LAST_ACK,
            State.SYN_RCVD,
        ):
            return
        sent_any = False
        while True:
            flight = tcb.flight_size
            usable = tcb.send_window - flight
            unsent = tcb.unsent_bytes
            length = min(tcb.mss, unsent, max(0, usable))
            if length <= 0:
                break
            if not self._should_send(length, unsent, flight):
                break
            offset = seq_diff(tcb.snd_nxt, tcb.buf_base)
            chunk = bytes(tcb.send_buffer[offset : offset + length])
            flags = TCP_ACK
            is_last = offset + length == len(tcb.send_buffer)
            if is_last:
                flags |= TCP_PSH
            fin_now = (
                tcb.fin_pending
                and not tcb.fin_sent
                and is_last
                and usable > length  # Room for the FIN's sequence slot.
            )
            if fin_now:
                flags |= TCP_FIN
            self._emit(actions, seq=tcb.snd_nxt, flags=flags, payload=chunk)
            if not tcb.rtt.timing:
                tcb.rtt.start_timing(seq_add(tcb.snd_nxt, length), now)
            tcb.snd_nxt = seq_add(tcb.snd_nxt, length + (1 if fin_now else 0))
            tcb.snd_max = seq_max(tcb.snd_max, tcb.snd_nxt)
            if fin_now:
                self._mark_fin_sent(seq_add(tcb.snd_nxt, -1))
            sent_any = True

        # A FIN with no data left to carry it.
        if (
            tcb.fin_pending
            and not tcb.fin_sent
            and tcb.unsent_bytes == 0
            and tcb.flight_size < tcb.send_window + 1
        ):
            self._send_fin(actions)
            sent_any = True

        if sent_any:
            actions.append(SetTimer(TIMER_REXMT, tcb.rtt.rto))
        elif (
            tcb.snd_wnd == 0
            and tcb.flight_size == 0
            and (tcb.unsent_bytes > 0 or (tcb.fin_pending and not tcb.fin_sent))
        ):
            # Zero window with data waiting: persist.
            actions.append(SetTimer(TIMER_PERSIST, self._persist_interval()))

    def _should_send(self, length: int, unsent: int, flight: int) -> bool:
        """Sender silly-window avoidance + Nagle (BSD tcp_output rules)."""
        tcb = self.tcb
        if length >= tcb.mss:
            return True
        if length == unsent:
            # All we have; send if idle or Nagle disabled.
            if flight == 0 or not tcb.config.nagle:
                return True
        # A decent fraction of the peer's buffer also justifies sending.
        if length * 2 >= tcb.config.rcv_buffer:
            return True
        return False

    def _send_fin(self, actions: list[TcpAction]) -> None:
        tcb = self.tcb
        self._emit(actions, seq=tcb.snd_nxt, flags=TCP_FIN | TCP_ACK)
        self._mark_fin_sent(tcb.snd_nxt)
        tcb.snd_nxt = seq_add(tcb.snd_nxt, 1)
        tcb.snd_max = seq_max(tcb.snd_max, tcb.snd_nxt)
        actions.append(SetTimer(TIMER_REXMT, tcb.rtt.rto))

    def _mark_fin_sent(self, fin_seq: int) -> None:
        tcb = self.tcb
        tcb.fin_sent = True
        tcb.fin_seq = fin_seq
        if tcb.state in (State.ESTABLISHED, State.SYN_RCVD):
            self._set_state(State.FIN_WAIT_1)
        elif tcb.state is State.CLOSE_WAIT:
            self._set_state(State.LAST_ACK)
