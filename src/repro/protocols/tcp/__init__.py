"""Sans-io TCP: RFC 793 + the 4.3BSD-era algorithms the paper's stack used.

The public surface is :class:`TcpMachine` (events in, actions out),
:class:`TcpConfig`, the event/action dataclasses, and
:class:`~repro.protocols.tcp.wire.Segment` with its codec.
"""

from .actions import (
    CancelTimer,
    DeliverData,
    DeliverFin,
    EmitSegment,
    NotifyClosed,
    NotifyConnected,
    SendSpaceAvailable,
    SetTimer,
    TcpAction,
    TIMER_CONN,
    TIMER_DELACK,
    TIMER_KEEPALIVE,
    TIMER_PERSIST,
    TIMER_REXMT,
    TIMER_TIME_WAIT,
)
from .cc import (
    CC_ALGORITHMS,
    CongestionAlgorithm,
    algorithms as cc_algorithms,
    make_cc,
)
from .congestion import CongestionControl
from .events import (
    AppAbort,
    AppClose,
    AppRead,
    AppSend,
    SegmentArrives,
    TcpInputEvent,
    TimerExpires,
)
from .machine import TcpError, TcpMachine
from .reassembly import ReassemblyQueue
from .rto import RttEstimator
from .tcb import State, SYNCHRONIZED_STATES, Tcb, TcpConfig
from .wire import (
    ChecksumError,
    Segment,
    TcpSegmentEncoder,
    decode_segment,
    encode_segment,
)

__all__ = [
    "TcpMachine",
    "TcpError",
    "TcpConfig",
    "Tcb",
    "State",
    "SYNCHRONIZED_STATES",
    "Segment",
    "encode_segment",
    "decode_segment",
    "TcpSegmentEncoder",
    "ChecksumError",
    "CC_ALGORITHMS",
    "CongestionAlgorithm",
    "CongestionControl",
    "cc_algorithms",
    "make_cc",
    "RttEstimator",
    "ReassemblyQueue",
    "TcpAction",
    "EmitSegment",
    "DeliverData",
    "DeliverFin",
    "SetTimer",
    "CancelTimer",
    "NotifyConnected",
    "NotifyClosed",
    "SendSpaceAvailable",
    "TcpInputEvent",
    "SegmentArrives",
    "AppSend",
    "AppRead",
    "AppClose",
    "AppAbort",
    "TimerExpires",
    "TIMER_REXMT",
    "TIMER_PERSIST",
    "TIMER_DELACK",
    "TIMER_TIME_WAIT",
    "TIMER_CONN",
    "TIMER_KEEPALIVE",
]
