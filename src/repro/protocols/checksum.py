"""Internet checksum — re-exported from :mod:`repro.net.checksum`.

The implementation lives with the wire formats (the header classes use
it too); this module keeps the documented ``repro.protocols.checksum``
import path working.
"""

from ..net.checksum import internet_checksum, pseudo_header, verify_checksum

__all__ = ["internet_checksum", "verify_checksum", "pseudo_header"]
