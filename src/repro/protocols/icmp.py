"""Sans-io ICMP: echo request/reply, destination unreachable, and the
time-exceeded errors routers generate on TTL expiry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.headers import (
    ICMP_DEST_UNREACHABLE,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    HeaderError,
    IcmpHeader,
)
from .checksum import internet_checksum

#: Destination-unreachable codes (RFC 792).
UNREACH_NET = 0
UNREACH_HOST = 1
UNREACH_PROTOCOL = 2
UNREACH_PORT = 3

#: Time-exceeded codes (RFC 792).
TTL_EXPIRED_IN_TRANSIT = 0
FRAGMENT_REASSEMBLY_EXCEEDED = 1


@dataclass(frozen=True)
class EchoMessage:
    """A parsed ICMP echo request or reply."""

    is_request: bool
    ident: int
    seq: int
    payload: bytes


def encode_echo(
    is_request: bool, ident: int, seq: int, payload: bytes = b""
) -> bytes:
    """Build an echo request/reply with a correct checksum."""
    icmp_type = ICMP_ECHO_REQUEST if is_request else ICMP_ECHO_REPLY
    header = IcmpHeader(icmp_type=icmp_type, code=0, ident=ident, seq=seq)
    body = header.pack() + bytes(payload)
    checksum = internet_checksum(body)
    return body[:2] + checksum.to_bytes(2, "big") + body[4:]


def decode_echo(data: bytes, verify: bool = True) -> Optional[EchoMessage]:
    """Parse an echo message; None for other ICMP types or bad checksums."""
    try:
        header = IcmpHeader.unpack(data)
    except HeaderError:
        return None
    if header.icmp_type not in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
        return None
    if verify and internet_checksum(data) != 0:
        return None
    return EchoMessage(
        is_request=header.icmp_type == ICMP_ECHO_REQUEST,
        ident=header.ident,
        seq=header.seq,
        payload=bytes(data[IcmpHeader.LENGTH :]),
    )


def make_reply(request: EchoMessage) -> bytes:
    """Echo responder: turn a request into its reply bytes."""
    if not request.is_request:
        raise ValueError("can only reply to a request")
    return encode_echo(False, request.ident, request.seq, request.payload)


@dataclass(frozen=True)
class UnreachableMessage:
    """A parsed ICMP destination-unreachable message."""

    code: int
    #: The offending datagram's IP header + first 8 payload bytes.
    original: bytes


def encode_unreachable(code: int, original_packet: bytes) -> bytes:
    """Build a destination-unreachable message (RFC 792).

    ``original_packet`` is the full IP packet that could not be
    delivered; the message quotes its header plus eight bytes of its
    payload — enough for the sender to identify the flow (the ports).
    """
    quoted = bytes(original_packet[: 20 + 8])
    header = IcmpHeader(icmp_type=ICMP_DEST_UNREACHABLE, code=code)
    body = header.pack() + quoted
    checksum = internet_checksum(body)
    return body[:2] + checksum.to_bytes(2, "big") + body[4:]


def decode_unreachable(data: bytes, verify: bool = True) -> Optional[UnreachableMessage]:
    """Parse a destination-unreachable message; None for other types."""
    try:
        header = IcmpHeader.unpack(data)
    except HeaderError:
        return None
    if header.icmp_type != ICMP_DEST_UNREACHABLE:
        return None
    if verify and internet_checksum(data) != 0:
        return None
    return UnreachableMessage(
        code=header.code, original=bytes(data[IcmpHeader.LENGTH :])
    )


@dataclass(frozen=True)
class TimeExceededMessage:
    """A parsed ICMP time-exceeded message (routers: TTL hit zero)."""

    code: int
    #: The expired datagram's IP header + first 8 payload bytes.
    original: bytes


def encode_time_exceeded(
    original_packet: bytes, code: int = TTL_EXPIRED_IN_TRANSIT
) -> bytes:
    """Build a time-exceeded message quoting the expired packet
    (RFC 792): its IP header plus eight payload bytes, enough for the
    sender to identify the flow — what traceroute depends on."""
    quoted = bytes(original_packet[: 20 + 8])
    header = IcmpHeader(icmp_type=ICMP_TIME_EXCEEDED, code=code)
    body = header.pack() + quoted
    checksum = internet_checksum(body)
    return body[:2] + checksum.to_bytes(2, "big") + body[4:]


def decode_time_exceeded(
    data: bytes, verify: bool = True
) -> Optional[TimeExceededMessage]:
    """Parse a time-exceeded message; None for other types."""
    try:
        header = IcmpHeader.unpack(data)
    except HeaderError:
        return None
    if header.icmp_type != ICMP_TIME_EXCEEDED:
        return None
    if verify and internet_checksum(data) != 0:
        return None
    return TimeExceededMessage(
        code=header.code, original=bytes(data[IcmpHeader.LENGTH :])
    )


def is_icmp_error(payload: bytes) -> bool:
    """True when an ICMP payload is itself an error message — which a
    router must never answer with another ICMP error (RFC 1122)."""
    try:
        header = IcmpHeader.unpack(payload)
    except HeaderError:
        return False
    return header.icmp_type in (ICMP_DEST_UNREACHABLE, ICMP_TIME_EXCEEDED)
