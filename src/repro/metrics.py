"""Measurement helpers used by benchmarks and integration tests.

Each workload runs to completion inside the testbed's simulator and
reports simulated-time results — the analogue of the paper's
AN1-controller real-time clock measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from .obs import hist as _hist
from .obs import profile as _obs_profile
from .testbed import IP_B, Testbed


@dataclass
class TransferResult:
    """Outcome of a one-way bulk transfer."""

    bytes_moved: int
    elapsed: float
    organization: str
    network: str
    chunk_size: int

    @property
    def throughput_mbps(self) -> float:
        """User-payload throughput in megabits/second (paper Table 2)."""
        if self.elapsed <= 0:
            return float("inf")
        return self.bytes_moved * 8 / self.elapsed / 1e6


@dataclass
class LatencyResult:
    """Outcome of a ping-pong latency run."""

    message_size: int
    rounds: int
    total_time: float
    organization: str
    network: str

    @property
    def rtt_ms(self) -> float:
        """Mean round-trip time in milliseconds (paper Table 3)."""
        return self.total_time / self.rounds * 1e3


@dataclass
class DemuxProfile:
    """Snapshot of one host's demux-engine behaviour over a workload.

    ``per_packet_us`` is filled by benchmarks that isolate the
    receive-path demux cost (Table 5 methodology); the tier counters
    come straight from the flow table.
    """

    host: str
    style: str
    flows: int
    exact_hits: int
    wildcard_hits: int
    scan_hits: int
    misses: int
    filters_scanned: int
    per_packet_us: float = 0.0

    @property
    def lookups(self) -> int:
        return (
            self.exact_hits + self.wildcard_hits
            + self.scan_hits + self.misses
        )

    @property
    def mean_scan_len(self) -> float:
        """Average legacy filters interpreted per classified packet."""
        if not self.lookups:
            return 0.0
        return self.filters_scanned / self.lookups


def demux_profile(host, per_packet_us: float = 0.0) -> DemuxProfile:
    """Read one host's flow-table counters into a :class:`DemuxProfile`."""
    table = host.netio.flow_table
    stats = table.stats
    return DemuxProfile(
        host=host.name,
        style=getattr(table, "style", "custom"),
        flows=len(table),
        exact_hits=stats["exact_hits"],
        wildcard_hits=stats["wildcard_hits"],
        scan_hits=stats["scan_hits"],
        misses=stats["misses"],
        filters_scanned=stats["filters_scanned"],
        per_packet_us=per_packet_us,
    )


@dataclass
class PacketCostProfile:
    """Copy accounting for the datapath over one workload.

    Collected from the module-global :data:`repro.net.buf.STATS`
    counters, the per-host demux tiers, and the template-encoder
    aggregate — the "bytes copied per delivered segment" quantity the
    paper's shared packet buffers eliminate.
    """

    mode: str
    copied_bytes: int
    copy_ops: int
    avoided_bytes: int
    materialized_bytes: int
    materialize_ops: int
    segments_delivered: int
    #: Demux tier: payloads handed to channels as views, and the bytes
    #: a legacy slice-copy would have moved there.
    payload_views: int
    demux_bytes_avoided: int
    #: Template encoder aggregate (all connections).
    full_encodes: int
    template_patches: int
    retransmit_reuses: int

    @property
    def total_copied(self) -> int:
        """Host copies plus wire-image fusion."""
        return self.copied_bytes + self.materialized_bytes

    @property
    def copied_per_segment(self) -> float:
        """Bytes copied per delivered segment — the headline number."""
        if not self.segments_delivered:
            return 0.0
        return self.total_copied / self.segments_delivered

    @property
    def template_hit_rate(self) -> float:
        """Fraction of TCP encodes served from a cached header image."""
        hits = self.template_patches + self.retransmit_reuses
        total = hits + self.full_encodes
        return hits / total if total else 0.0


def packet_cost_profile(hosts=()) -> PacketCostProfile:
    """Snapshot the copy counters after a workload.

    ``hosts`` supplies the delivered-segment denominator (the sum of
    each host's ``rx_demuxed``) and the demux-tier view counters; the
    buf and encoder counters are process-global, so reset them
    (:func:`repro.net.buf.reset_stats`,
    :meth:`TcpSegmentEncoder.reset_global_stats`) before the workload.
    """
    from .net.buf import STATS, get_mode
    from .protocols.tcp.wire import TcpSegmentEncoder

    segments = 0
    views = 0
    demux_avoided = 0
    for host in hosts:
        segments += host.netio.stats["rx_demuxed"]
        table_stats = getattr(host.netio.flow_table, "stats", None)
        if table_stats:
            views += table_stats.get("payload_views", 0)
            demux_avoided += table_stats.get("bytes_copy_avoided", 0)
    return PacketCostProfile(
        mode=get_mode(),
        copied_bytes=STATS.copied_bytes,
        copy_ops=STATS.copy_ops,
        avoided_bytes=STATS.avoided_bytes,
        materialized_bytes=STATS.materialized_bytes,
        materialize_ops=STATS.materialize_ops,
        segments_delivered=segments,
        payload_views=views,
        demux_bytes_avoided=demux_avoided,
        full_encodes=TcpSegmentEncoder.GLOBAL_STATS["full_encodes"],
        template_patches=TcpSegmentEncoder.GLOBAL_STATS["template_patches"],
        retransmit_reuses=TcpSegmentEncoder.GLOBAL_STATS["retransmit_reuses"],
    )


@dataclass
class SetupResult:
    """Outcome of a connection-setup measurement."""

    rounds: int
    total_time: float
    organization: str
    network: str

    @property
    def setup_ms(self) -> float:
        """Mean connection-setup time in milliseconds (paper Table 4)."""
        return self.total_time / self.rounds * 1e3


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), 1.0 when all equal."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


@dataclass
class FlowResult:
    """One flow of a many-flow fabric workload."""

    index: int
    bytes_moved: int
    start: float
    end: float
    retransmits: int = 0

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_moved * 8 / self.elapsed / 1e6


@dataclass
class FabricResult:
    """Outcome of N concurrent transfers through a fabric."""

    flows: list[FlowResult]
    bottleneck_drops: int
    other_drops: int
    organization: str

    @property
    def aggregate_mbps(self) -> float:
        """Total goodput over the span from first start to last finish."""
        if not self.flows:
            return 0.0
        span = max(f.end for f in self.flows) - min(f.start for f in self.flows)
        if span <= 0:
            return 0.0
        return sum(f.bytes_moved for f in self.flows) * 8 / span / 1e6

    @property
    def fairness(self) -> float:
        return jain_fairness([f.throughput_mbps for f in self.flows])

    @property
    def total_retransmits(self) -> int:
        return sum(f.retransmits for f in self.flows)


def _conn_retransmits(conn) -> int:
    """The sender-side retransmission count of one connection (0 when
    the organization does not expose a machine)."""
    machine = getattr(getattr(conn, "runner", None), "machine", None)
    if machine is None:
        return 0
    return machine.stats["retransmits"]


def measure_fabric_transfers(
    fabric,
    bytes_per_flow: int = 150_000,
    chunk_size: int = 4096,
    base_port: int = 5000,
    stagger: float = 0.02,
    deadline: Optional[float] = None,
) -> FabricResult:
    """Run one bulk transfer per client/server pair of a dumbbell
    :class:`~repro.testbed.FabricTestbed`, all sharing the bottleneck.

    Client ``i`` connects to server ``i`` (starts staggered by
    ``stagger`` seconds to avoid synchronized slow starts) and streams
    ``bytes_per_flow``; per-flow goodput is measured from connect to
    the server's last byte.  Fairness across the finished flows is the
    headline number — with everyone's cwnd probing the same queue, a
    broken retransmit or demux path shows up as a starved flow.
    """
    clients = fabric.client_services
    servers = fabric.server_services
    if not clients:
        raise ValueError("fabric has no client/server pairs (need a dumbbell)")
    sim = fabric.sim
    marks: dict[int, dict] = {i: {} for i in range(len(clients))}
    payload = (bytes(range(256)) * (chunk_size // 256 + 1))[:chunk_size]

    def server(i: int):
        listener = yield from servers[i].listen(base_port + i)
        conn = yield from listener.accept()
        received = 0
        while received < bytes_per_flow:
            data = yield from conn.recv(chunk_size)
            if not data:
                break
            received += len(data)
        marks[i]["received"] = received
        marks[i]["end"] = sim.now
        yield from conn.close()

    def client(i: int):
        yield sim.timeout(i * stagger)
        marks[i]["start"] = sim.now
        conn = yield from clients[i].connect(
            fabric.topology.servers[i].ip, base_port + i
        )
        marks[i]["conn"] = conn
        sent = 0
        while sent < bytes_per_flow:
            chunk = payload[: min(chunk_size, bytes_per_flow - sent)]
            yield from conn.send(chunk)
            sent += len(chunk)
        yield from conn.close()

    receivers = []
    for i in range(len(clients)):
        receivers.append(fabric.spawn(server(i), name=f"srv{i}"))
        fabric.spawn(client(i), name=f"cli{i}")
    if deadline is not None:
        fabric.run(until=deadline)
    else:
        for proc in receivers:
            fabric.run(until=proc)

    flows = [
        FlowResult(
            index=i,
            bytes_moved=marks[i].get("received", 0),
            start=marks[i].get("start", 0.0),
            end=marks[i].get("end", sim.now),
            retransmits=_conn_retransmits(marks[i].get("conn")),
        )
        for i in range(len(clients))
    ]
    reg = _hist.REGISTRY
    if reg is not None:
        for flow in flows:
            if flow.bytes_moved and flow.elapsed > 0:
                reg.record("flow.completion", flow.elapsed)
    bottleneck = getattr(fabric, "bottleneck", None)
    bottleneck_drops = bottleneck.drops if bottleneck is not None else 0
    other_drops = sum(
        port.drops
        for switch in fabric.switches
        for port in switch.ports
        if port is not bottleneck
    )
    return FabricResult(
        flows=flows,
        bottleneck_drops=bottleneck_drops,
        other_drops=other_drops,
        organization=fabric.organization,
    )


def measure_throughput(
    testbed: Testbed,
    total_bytes: int = 500_000,
    chunk_size: int = 4096,
    port: int = 4000,
    warmup_bytes: int = 64 * 1024,
    tail_bytes: int = 16 * 1024,
) -> TransferResult:
    """One-way bulk transfer a→b; measures the steady-state portion.

    The first ``warmup_bytes`` prime slow start and the last
    ``tail_bytes`` cover the sub-MSS endgame (Nagle holding the final
    partial segment across a delayed ACK); both are excluded from the
    timed window, mirroring how sustained-throughput numbers are taken
    on real systems.
    """
    if total_bytes <= warmup_bytes + tail_bytes:
        raise ValueError(
            f"total_bytes ({total_bytes}) must exceed warmup_bytes + "
            f"tail_bytes ({warmup_bytes} + {tail_bytes}); the timed "
            "window would be empty or negative"
        )
    marks = {}
    payload = bytes(range(256)) * (chunk_size // 256 + 1)
    payload = payload[:chunk_size]

    def sender():
        conn = yield from testbed.service_a.connect(IP_B, port)
        sent = 0
        while sent < total_bytes:
            if sent >= warmup_bytes and "t0" not in marks:
                marks["t0"] = testbed.sim.now
                marks["sent0"] = sent
            chunk = payload[: min(chunk_size, total_bytes - sent)]
            yield from conn.send(chunk)
            sent += len(chunk)
        yield from conn.close()

    def receiver():
        listener = yield from testbed.service_b.listen(port)
        conn = yield from listener.accept()
        received = 0
        while True:
            # ttcp-style: the receiver reads in the same buffer size the
            # sender writes (the paper varies the *user packet size*).
            data = yield from conn.recv(chunk_size)
            if not data:
                break
            received += len(data)
            # Timestamp once the steady-state window ends; the tail
            # (final sub-MSS chunk under Nagle + delayed ACK) and the
            # FIN exchange are teardown, not steady-state throughput.
            if received >= total_bytes - tail_bytes and "t1" not in marks:
                marks["t1"] = testbed.sim.now
                marks["received"] = received
        yield from conn.close()

    rx = testbed.spawn(receiver(), name="rx")
    testbed.spawn(sender(), name="tx")
    testbed.run(until=rx)
    timed_bytes = marks["received"] - marks.get("sent0", 0)
    elapsed = marks["t1"] - marks.get("t0", 0.0)
    return TransferResult(
        bytes_moved=timed_bytes,
        elapsed=elapsed,
        organization=testbed.organization,
        network=testbed.network,
        chunk_size=chunk_size,
    )


def measure_latency(
    testbed: Testbed,
    message_size: int = 1,
    rounds: int = 40,
    port: int = 4100,
) -> LatencyResult:
    """Ping-pong: a sends ``message_size`` bytes, b echoes them back
    (paper Table 3's methodology)."""
    marks = {}
    payload = b"x" * message_size

    def echo_server():
        listener = yield from testbed.service_b.listen(port)
        conn = yield from listener.accept()
        for _ in range(rounds):
            data = yield from conn.recv_exactly(message_size)
            yield from conn.send(data)
        yield from conn.close()

    def pinger():
        conn = yield from testbed.service_a.connect(IP_B, port)
        start = testbed.sim.now
        for _ in range(rounds):
            yield from conn.send(payload)
            yield from conn.recv_exactly(message_size)
        marks["total"] = testbed.sim.now - start
        yield from conn.close()

    testbed.spawn(echo_server(), name="echo")
    ping = testbed.spawn(pinger(), name="ping")
    testbed.run(until=ping)
    return LatencyResult(
        message_size=message_size,
        rounds=rounds,
        total_time=marks["total"],
        organization=testbed.organization,
        network=testbed.network,
    )


def measure_setup(
    testbed: Testbed,
    rounds: int = 10,
    port: int = 4200,
) -> SetupResult:
    """Connection-setup cost: active open to an already-listening peer
    (paper Table 4's methodology), connect() call to established."""
    marks = {"total": 0.0}

    def acceptor():
        listener = yield from testbed.service_b.listen(port)
        for _ in range(rounds + 1):  # +1 for the warmup round.
            conn = yield from listener.accept()
            data = yield from conn.recv(64)
            yield from conn.close()

    def connector():
        # Warmup round: primes the ARP cache (and any cold state) so the
        # timed rounds measure connection setup alone.
        warm = yield from testbed.service_a.connect(IP_B, port)
        yield from warm.send(b"done")
        yield from warm.close()
        yield testbed.sim.timeout(0.5)
        for i in range(rounds):
            start = testbed.sim.now
            conn = yield from testbed.service_a.connect(IP_B, port)
            marks["total"] += testbed.sim.now - start
            yield from conn.send(b"done")
            yield from conn.close()
            # Space the rounds out so closes fully drain.
            yield testbed.sim.timeout(0.5)

    testbed.spawn(acceptor(), name="accept")
    conn_proc = testbed.spawn(connector(), name="connect")
    testbed.run(until=conn_proc)
    return SetupResult(
        rounds=rounds,
        total_time=marks["total"],
        organization=testbed.organization,
        network=testbed.network,
    )


@dataclass
class CheckedTransfer:
    """One transfer of a conformance-campaign cell, with the evidence
    the invariant checkers need: the exact payload offered, the exact
    bytes the receiving socket saw, both endpoint machines, and how each
    side's connection ended."""

    index: int
    port: int
    payload: bytes = b""
    received: bytes = b""
    client_done: bool = False
    server_done: bool = False
    errors: list = field(default_factory=list)
    client_machine: object = None
    server_machine: object = None
    client_close_reason: Optional[str] = None
    server_close_reason: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.client_done and self.server_done and not self.errors


def run_checked_transfers(
    bed,
    transfers: int = 2,
    payload_bytes: int = 20_000,
    chunk_size: int = 2048,
    base_port: int = 7000,
    seed: int = 0,
    deadline: float = 60.0,
    stagger: float = 0.05,
) -> list[CheckedTransfer]:
    """Run ``transfers`` concurrent one-way transfers and collect the
    socket-layer evidence for the conformance checkers.

    Works on both testbed shapes: on a two-host :class:`Testbed` every
    transfer runs a→b on its own port; on a
    :class:`~repro.testbed.FabricTestbed` dumbbell, transfer ``i`` runs
    client ``i % pairs`` → server ``i % pairs``.  Payloads are
    deterministic functions of ``seed`` so a campaign cell replays
    bit-identically.  The run is bounded by ``deadline`` simulated
    seconds rather than by process completion, because under heavy
    faults a transfer may legitimately give up (max retransmits) — the
    checkers, not this function, decide whether that outcome was
    conformant.
    """
    sim = bed.sim
    if hasattr(bed, "service_a"):

        def client_service(i):
            return bed.service_a

        def server_service(i):
            return bed.service_b

        def server_ip(i):
            return IP_B

    else:
        clients = bed.client_services
        servers = bed.server_services

        def client_service(i):
            return clients[i % len(clients)]

        def server_service(i):
            return servers[i % len(servers)]

        def server_ip(i):
            return bed.topology.servers[i % len(servers)].ip

    results = [
        CheckedTransfer(
            index=i,
            port=base_port + i,
            payload=random.Random((seed << 16) + i).randbytes(payload_bytes),
        )
        for i in range(transfers)
    ]
    runners: dict[int, dict] = {i: {} for i in range(transfers)}

    def server(i: int):
        t = results[i]
        try:
            listener = yield from server_service(i).listen(t.port)
            conn = yield from listener.accept()
            runners[i]["server"] = conn.runner
            t.server_machine = conn.runner.machine
            chunks = []
            while True:
                data = yield from conn.recv(chunk_size)
                if not data:
                    break
                chunks.append(data)
            t.received = b"".join(chunks)
            yield from conn.close()
            t.server_done = True
        except Exception as exc:  # Evidence, not a crash: checkers judge.
            t.errors.append(f"server: {exc!r}")

    def client(i: int):
        t = results[i]
        try:
            yield sim.timeout(i * stagger)
            conn = yield from client_service(i).connect(server_ip(i), t.port)
            runners[i]["client"] = conn.runner
            t.client_machine = conn.runner.machine
            sent = 0
            while sent < len(t.payload):
                chunk = t.payload[sent : sent + chunk_size]
                yield from conn.send(chunk)
                sent += len(chunk)
            yield from conn.close()
            t.client_done = True
        except Exception as exc:
            t.errors.append(f"client: {exc!r}")

    for i in range(transfers):
        bed.spawn(server(i), name=f"chk-srv{i}")
        bed.spawn(client(i), name=f"chk-cli{i}")
    # TCP keepalive/retransmit machinery can keep the queue from
    # quiescing on its own; the clock bound is what ends the run.
    sim.run_all(limit=deadline)

    for i, t in enumerate(results):
        client_runner = runners[i].get("client")
        server_runner = runners[i].get("server")
        if client_runner is not None:
            t.client_close_reason = client_runner.closed_reason
        if server_runner is not None:
            t.server_close_reason = server_runner.closed_reason
    return results


@dataclass
class EngineProfile:
    """Engine-level throughput of one simulation run.

    ``events`` and friends are deltas over the measured window (the
    scale bench snapshots ``sim.engine_stats()`` around the run), so
    events/sec is the engine's processing rate and *wall-clock per
    simulated second* says how expensive one second of simulated time
    is to compute — the two numbers the ROADMAP's "hundreds of hosts"
    goal is graded on.
    """

    label: str
    events: int
    steps: int
    wall_seconds: float
    sim_seconds: float
    max_batch: int = 0
    skipped: int = 0
    cancelled: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def wall_per_sim_second(self) -> float:
        return self.wall_seconds / self.sim_seconds if self.sim_seconds else 0.0

    @property
    def events_per_step(self) -> float:
        return self.events / self.steps if self.steps else 0.0


def engine_profile(
    sim,
    label: str,
    wall_seconds: float,
    sim_seconds: float,
    baseline: Optional[dict] = None,
) -> EngineProfile:
    """Build an :class:`EngineProfile` from ``sim.engine_stats()``.

    ``baseline`` (an earlier ``engine_stats()`` snapshot) turns the
    cumulative counters into deltas for the measured window.
    """
    stats = sim.engine_stats()
    base = baseline or {}
    return EngineProfile(
        label=label,
        events=stats["events"] - base.get("events", 0),
        steps=stats["steps"] - base.get("steps", 0),
        wall_seconds=wall_seconds,
        sim_seconds=sim_seconds,
        max_batch=stats["max_batch"],
        skipped=stats["skipped"] - base.get("skipped", 0),
        cancelled=stats["cancelled"] - base.get("cancelled", 0),
    )


@dataclass
class TenantProfile:
    """One tenant's resource occupancy and enforcement history.

    Read from the :class:`~repro.tenancy.tenant.TenantManager` the
    trusted layers share; ``rejections`` counts every audited refusal
    (quota, grant, template), ``throttle_events`` every token-bucket
    refusal at the send trap.
    """

    tenant_id: str
    channels: int
    region_bytes_used: int
    region_bytes_quota: int
    bqi_buffers_used: int
    bqi_buffers_quota: int
    tx_bytes: int
    rx_bytes: int
    throttle_events: int
    rejections: int
    peak_region_bytes: int
    peak_channels: int

    @property
    def region_occupancy(self) -> float:
        """Fraction of the region quota currently held."""
        if not self.region_bytes_quota:
            return 0.0
        return self.region_bytes_used / self.region_bytes_quota

    @property
    def bqi_occupancy(self) -> float:
        if not self.bqi_buffers_quota:
            return 0.0
        return self.bqi_buffers_used / self.bqi_buffers_quota


def tenant_profile(manager) -> list[TenantProfile]:
    """Snapshot every tenant known to ``manager`` (a
    :class:`~repro.tenancy.tenant.TenantManager`), sorted by id."""
    profiles = []
    for tenant in sorted(manager, key=lambda t: t.tenant_id):
        counters = tenant.counters
        profiles.append(
            TenantProfile(
                tenant_id=tenant.tenant_id,
                channels=tenant.channel_count,
                region_bytes_used=tenant.region_bytes_used,
                region_bytes_quota=tenant.budget.region_bytes,
                bqi_buffers_used=tenant.bqi_buffers_used,
                bqi_buffers_quota=tenant.budget.bqi_buffers,
                tx_bytes=counters["tx_bytes"],
                rx_bytes=counters["rx_bytes"],
                throttle_events=counters["throttle_events"],
                rejections=counters["rejections"],
                peak_region_bytes=counters["peak_region_bytes"],
                peak_channels=counters["peak_channels"],
            )
        )
    return profiles


def obs_profile(top: Optional[int] = None):
    """The sim-time profiler's report, sorted by self time.

    Returns a list of :class:`repro.obs.profile.SiteReport` rows from
    the live profiler, or ``[]`` when profiling is disabled.  The
    benchmark pattern is ``repro.obs.enable()`` → workload →
    ``metrics.obs_profile()``.
    """
    profiler = _obs_profile.PROFILER
    if profiler is None:
        return []
    return profiler.report(top)


def obs_histograms() -> dict[str, dict]:
    """Summaries (count/mean/p50/p90/p99/p999) of every live histogram,
    or ``{}`` when histograms are disabled."""
    registry = _hist.REGISTRY
    if registry is None:
        return {}
    return registry.summaries()
