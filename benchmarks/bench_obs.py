"""Observability-plane overhead gate.

The plane's contract is "near-zero cost when off": every instrumented
call site pays one module-attribute load and one ``is None`` test when
the plane is disabled.  This bench measures that contract on the
Table 2 bulk-transfer workload, run twice through identical code:

``off``
    the plane disabled (the default state every other bench and test
    runs in) — this is what the guarded call sites cost;

``on``
    spans + profiler + histograms all enabled.

Both arms take the minimum CPU time over several rounds (CPU time, not
wall, so machine contention doesn't fail the gate), and the simulated
outcome must be bit-identical between arms — observability must never
change what the simulation *does*.

Gates:

* ``on``/``off`` CPU ratio <= ``MAX_ENABLED_RATIO`` (measured
  in-process, machine-independent);
* the ``off`` arm may not exceed the recorded
  ``baselines/obs_quick.json`` CPU time by more than
  ``DISABLED_SLACK`` — a crude but effective tripwire against someone
  adding an instrumented site that does real work before the
  ``is None`` guard.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.metrics import measure_throughput
from repro.testbed import Testbed

NETWORK = "ethernet"
ORGANIZATION = "userlib"
CHUNK_SIZE = 4096
FULL_BYTES = 500_000
QUICK_BYTES = 150_000
ROUNDS = 5

#: The enabled plane may cost at most this factor over disabled.
MAX_ENABLED_RATIO = 1.25

BASELINE_PATH = Path(__file__).parent / "baselines" / "obs_quick.json"
#: Disabled-cost tripwire: the off arm may exceed the recorded CPU time
#: by at most 2% x a noise allowance (min-of-N CPU time is stable to
#: ~1% on an idle machine; CI machines are not idle, hence the x10).
DISABLED_SLACK = 1.20


def run_arm(enabled: bool, total_bytes: int, rounds: int) -> dict:
    """Min-of-N CPU time for one arm of the same seeded workload."""
    best_cpu = float("inf")
    best_wall = float("inf")
    throughput = None
    plane = {}
    for _ in range(rounds):
        if enabled:
            session = obs.enable()
        try:
            testbed = Testbed(network=NETWORK, organization=ORGANIZATION)
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            result = measure_throughput(
                testbed, total_bytes=total_bytes, chunk_size=CHUNK_SIZE
            )
            cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
        finally:
            if enabled:
                plane = {
                    "spans_minted": session.spans.minted,
                    "span_events": session.spans.recorded,
                    "profile_sites": len(session.profiler.report()),
                    "histograms": session.histograms.names(),
                }
                obs.disable()
        best_cpu = min(best_cpu, cpu)
        best_wall = min(best_wall, wall)
        if throughput is None:
            throughput = result.throughput_mbps
        else:
            # Deterministic simulation: every round and both arms must
            # agree on the simulated outcome to the last bit.
            assert result.throughput_mbps == throughput
    return {
        "enabled": enabled,
        "cpu_seconds": best_cpu,
        "wall_seconds": best_wall,
        "throughput_mbps": throughput,
        **plane,
    }


def run_comparison(total_bytes: int, rounds: int = ROUNDS) -> dict:
    off = run_arm(False, total_bytes, rounds)
    on = run_arm(True, total_bytes, rounds)
    ratio = on["cpu_seconds"] / off["cpu_seconds"] if off["cpu_seconds"] else 1.0
    return {"off": off, "on": on, "enabled_ratio": ratio}


def check_comparison(comparison: dict) -> None:
    off, on = comparison["off"], comparison["on"]
    assert on["throughput_mbps"] == off["throughput_mbps"], (
        "observability changed the simulated outcome: "
        f"{on['throughput_mbps']} vs {off['throughput_mbps']} Mb/s"
    )
    assert comparison["enabled_ratio"] <= MAX_ENABLED_RATIO, (
        f"enabled plane costs {comparison['enabled_ratio']:.2f}x disabled "
        f"(gate {MAX_ENABLED_RATIO}x)"
    )
    # The enabled arm actually observed the workload.
    assert on["spans_minted"] > 0
    assert on["span_events"] > on["spans_minted"]
    assert on["profile_sites"] >= 5
    assert "tcp.rtt" in on["histograms"]


def check_baseline(off: dict) -> str:
    """Disabled-cost tripwire against the recorded quick baseline."""
    if not BASELINE_PATH.exists():
        return "baseline: none recorded (run --update-baseline)"
    baseline = json.loads(BASELINE_PATH.read_text())
    recorded = baseline["cpu_seconds_disabled"]
    limit = recorded * DISABLED_SLACK
    assert off["cpu_seconds"] <= limit, (
        f"disabled-path regression: {off['cpu_seconds']:.3f}s CPU vs "
        f"baseline {recorded:.3f}s (limit {limit:.3f}s) — did an "
        f"instrumented site start doing work before its is-None guard?"
    )
    return (
        f"baseline: disabled {off['cpu_seconds']:.3f}s vs recorded "
        f"{recorded:.3f}s (limit {limit:.3f}s) ok"
    )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_obs_overhead(report):
    comparison = run_comparison(QUICK_BYTES, rounds=3)
    check_comparison(comparison)
    report(
        "Observability plane",
        "enabled/disabled CPU ratio",
        comparison["enabled_ratio"],
        MAX_ENABLED_RATIO,
        "x",
    )


# ----------------------------------------------------------------------
# Standalone / CI entry point
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="observability plane overhead: disabled vs enabled"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: short transfer + disabled-cost baseline guard",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the quick disabled arm as the new baseline",
    )
    args = parser.parse_args(argv)

    total_bytes = QUICK_BYTES if args.quick or args.update_baseline else FULL_BYTES
    comparison = run_comparison(total_bytes)
    off, on = comparison["off"], comparison["on"]

    print(
        f"workload: {NETWORK}/{ORGANIZATION}, {total_bytes} bytes in "
        f"{CHUNK_SIZE}-byte chunks, min of {ROUNDS} rounds"
    )
    print(
        f"off  cpu {off['cpu_seconds']:.3f}s  wall {off['wall_seconds']:.3f}s  "
        f"throughput {off['throughput_mbps']:.2f} Mb/s"
    )
    print(
        f"on   cpu {on['cpu_seconds']:.3f}s  wall {on['wall_seconds']:.3f}s  "
        f"({on['spans_minted']} traces, {on['span_events']} span events, "
        f"{on['profile_sites']} profile sites)"
    )
    print(
        f"enabled/disabled ratio {comparison['enabled_ratio']:.3f}x "
        f"(gate <= {MAX_ENABLED_RATIO}x)"
    )
    check_comparison(comparison)

    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "workload": f"{NETWORK}/{ORGANIZATION}",
                    "total_bytes": total_bytes,
                    "chunk_size": CHUNK_SIZE,
                    "rounds": ROUNDS,
                    "cpu_seconds_disabled": off["cpu_seconds"],
                    "cpu_seconds_enabled": on["cpu_seconds"],
                    "enabled_ratio": comparison["enabled_ratio"],
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    elif args.quick:
        print(check_baseline(off))
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
