"""Table 2: TCP throughput by organization, network, and packet size.

Reproduces the paper's central result: a user-level library TCP
outperforms the Mach/UX single-server organization and approaches (but
does not match) the in-kernel Ultrix implementation on Ethernet, while
on AN1 the copy-eliminating buffer organization makes the library *win*
at small packet sizes.
"""

import pytest
from paper_targets import TABLE2, TABLE2_SIZES

from repro.metrics import measure_throughput
from repro.testbed import Testbed

#: One full row per bench invocation keeps pytest-benchmark output sane.
CONFIGS = [
    pytest.param(net, org, id=f"{net}-{org}")
    for (net, org) in TABLE2
]


def run_row(network: str, organization: str) -> dict:
    row = {}
    for size in TABLE2_SIZES:
        testbed = Testbed(network=network, organization=organization)
        result = measure_throughput(
            testbed, total_bytes=400_000, chunk_size=size
        )
        row[size] = result.throughput_mbps
    return row


@pytest.mark.parametrize("network,organization", CONFIGS)
def test_table2_row(benchmark, report, network, organization):
    row = benchmark.pedantic(
        run_row, args=(network, organization), rounds=1, iterations=1
    )
    paper_row = TABLE2[(network, organization)]
    for size in TABLE2_SIZES:
        report(
            "Table 2 (throughput)",
            f"{network} {organization} @{size}B",
            row[size],
            paper_row[size],
            "Mb/s",
        )
    # Shape: throughput is monotone non-decreasing in packet size
    # (within a small tolerance for scheduling noise).
    sizes = list(TABLE2_SIZES)
    for small, large in zip(sizes, sizes[1:]):
        assert row[large] >= row[small] * 0.93, (
            f"{network}/{organization}: {large}B slower than {small}B"
        )
    # Absolute sanity: within a factor of 2 of the paper's number.
    for size in TABLE2_SIZES:
        assert 0.5 <= row[size] / paper_row[size] <= 2.0


def _measure(network, organization, size, total=400_000):
    testbed = Testbed(network=network, organization=organization)
    return measure_throughput(
        testbed, total_bytes=total, chunk_size=size
    ).throughput_mbps


def test_table2_ethernet_ordering(benchmark):
    """Paper: ours outperforms Mach/UX; Ultrix outperforms ours."""

    def run():
        return {
            org: _measure("ethernet", org, 4096)
            for org in ("ultrix", "userlib", "mach-ux")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["ultrix"] > r["userlib"] > r["mach-ux"]
    # Paper: ours is ~40% faster than Mach/UX at 4 KB.
    assert r["userlib"] / r["mach-ux"] >= 1.25
    # Paper: Ultrix is 35-65% faster than ours on Ethernet.
    assert r["ultrix"] / r["userlib"] >= 1.15


def test_table2_an1_library_wins_small_packets(benchmark):
    """Paper: "We achieve better performance than Ultrix with 512-byte
    user packets because our implementation uses a buffer organization
    that eliminates byte copying."""

    def run():
        return {
            org: _measure("an1", org, 512)
            for org in ("ultrix", "userlib")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["userlib"] > r["ultrix"]


def test_table2_an1_narrows_gap(benchmark):
    """Paper: "on AN1, the difference is far less pronounced"."""

    def run():
        out = {}
        for net in ("ethernet", "an1"):
            out[net] = {
                org: _measure(net, org, 1024)
                for org in ("ultrix", "userlib")
            }
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    eth_ratio = r["ethernet"]["ultrix"] / r["ethernet"]["userlib"]
    an1_ratio = r["an1"]["ultrix"] / r["an1"]["userlib"]
    assert an1_ratio < eth_ratio
