"""Many-flow congestion through a dumbbell bottleneck.

The paper benchmarks two hosts on a private segment; this bench puts
the same user-level TCP stacks behind a switched fabric and drives
2 → 64 concurrent flows through one 10 Mb/s trunk.  What is being
tested is emergent, not scripted: loss happens only where the trunk
port's finite egress queue overflows, so congestion control, fast
retransmit, and RTO backoff are exercised by *real* queue dynamics.

Reported per flow count:

* aggregate goodput vs the 10 Mb/s trunk (utilization);
* Jain's fairness index across per-flow goodputs;
* drops at the bottleneck port (and the requirement that *no other*
  port drops anything).

Run standalone for CI smoke: ``python benchmarks/bench_fabric_bottleneck.py
--quick``.
"""

import argparse
import sys

from repro import netstat
from repro.metrics import measure_fabric_transfers
from repro.testbed import FabricTestbed

TRUNK_MBPS = 10.0

#: (flow pairs, bytes per flow).  Larger sweeps use shorter flows to
#: bound wall time; 64 flows into a 48 KB queue is deep overload.
SWEEP = ((2, 250_000), (4, 250_000), (16, 250_000), (64, 100_000))


def run_dumbbell(pairs: int, bytes_per_flow: int, red: bool = False):
    fabric = FabricTestbed(kind="dumbbell", pairs=pairs, red=red)
    result = measure_fabric_transfers(fabric, bytes_per_flow=bytes_per_flow)
    return fabric, result


def run_sweep():
    return {
        pairs: run_dumbbell(pairs, bytes_per_flow)
        for pairs, bytes_per_flow in SWEEP
    }


def check_result(pairs: int, bytes_per_flow: int, result) -> None:
    """The invariants every dumbbell run must satisfy."""
    # Every flow progresses to completion — nobody is starved out.
    for flow in result.flows:
        assert flow.bytes_moved == bytes_per_flow, (
            f"{pairs} flows: flow {flow.index} moved only "
            f"{flow.bytes_moved}/{bytes_per_flow} bytes"
        )
    # Goodput cannot exceed the trunk, and the flows should keep the
    # bottleneck busy once there are a few of them.
    assert result.aggregate_mbps <= TRUNK_MBPS
    if pairs >= 4:
        assert result.aggregate_mbps >= 0.5 * TRUNK_MBPS
    # Loss only where the bottleneck is configured.
    assert result.other_drops == 0, (
        f"{pairs} flows: {result.other_drops} drops off-bottleneck"
    )
    if pairs >= 16:
        assert result.bottleneck_drops > 0, (
            f"{pairs} flows overload the trunk but nothing was dropped"
        )


def test_fabric_bottleneck_sweep(benchmark, report):
    runs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for pairs, bytes_per_flow in SWEEP:
        _, result = runs[pairs]
        check_result(pairs, bytes_per_flow, result)
        report(
            "Dumbbell bottleneck (10 Mb/s trunk)",
            f"{pairs} flows: aggregate goodput",
            result.aggregate_mbps,
            TRUNK_MBPS,
            "Mbps",
        )
        report(
            "Dumbbell bottleneck (10 Mb/s trunk)",
            f"{pairs} flows: Jain fairness",
            result.fairness,
            1.0,
            "",
        )
    # The acceptance bar: at 16 flows the stacks share the trunk
    # evenly enough (drop-driven cwnd convergence, not luck).
    _, sixteen = runs[16]
    assert sixteen.fairness >= 0.8, f"fairness {sixteen.fairness:.3f} < 0.8"
    # Two flows fit inside the queue's bandwidth-delay allowance: no
    # loss at all, and a near-even split.
    _, two = runs[2]
    assert two.bottleneck_drops == 0
    assert two.fairness >= 0.95


def test_fabric_red_vs_taildrop(report):
    """RED sheds load early but must not wreck goodput or fairness."""
    _, taildrop = run_dumbbell(16, 250_000)
    fabric, red = run_dumbbell(16, 250_000, red=True)
    check_result(16, 250_000, red)
    assert fabric.bottleneck.queue.discipline == "red"
    assert fabric.bottleneck.queue.stats["early_dropped"] > 0
    assert red.fairness >= 0.7
    assert red.aggregate_mbps >= 0.5 * TRUNK_MBPS
    report(
        "Dumbbell bottleneck (10 Mb/s trunk)",
        "16 flows: RED vs taildrop aggregate",
        red.aggregate_mbps,
        taildrop.aggregate_mbps,
        "Mbps",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="TCP flows through a dumbbell bottleneck"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one small run instead of the full sweep",
    )
    parser.add_argument(
        "--netstat",
        action="store_true",
        help="dump the netstat report of the last run",
    )
    args = parser.parse_args(argv)
    sweep = ((4, 150_000),) if args.quick else SWEEP

    fabric = None
    for pairs, bytes_per_flow in sweep:
        fabric, result = run_dumbbell(pairs, bytes_per_flow)
        check_result(pairs, bytes_per_flow, result)
        print(
            f"{pairs:3d} flows x {bytes_per_flow // 1000:3d} KB: "
            f"aggregate {result.aggregate_mbps:5.2f} Mb/s  "
            f"fairness {result.fairness:.3f}  "
            f"drops {result.bottleneck_drops} (bottleneck) "
            f"/ {result.other_drops} (elsewhere)"
        )
    if args.netstat and fabric is not None:
        print()
        print(netstat.render(fabric))
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
