"""Table 4: connection setup cost, plus the paper's §4 breakdown of our
11.9 ms Ethernet setup into five components.

Setup is where the user-level organization pays for its security: the
registry server allocates the end-point, runs the handshake over its
(slow, IPC-based) device path, builds the protected channel, and
transfers the TCP state to the library — "a reasonable overhead if it
can be amortized over multiple subsequent data exchanges".
"""

import pytest
from paper_targets import TABLE4, TABLE4_BREAKDOWN

from repro.metrics import measure_setup
from repro.testbed import IP_B, Testbed

CONFIGS = [
    pytest.param(net, org, id=f"{net}-{org}")
    for (net, org) in TABLE4
]


def run_setup(network: str, organization: str) -> float:
    testbed = Testbed(network=network, organization=organization)
    return measure_setup(testbed, rounds=8).setup_ms


@pytest.mark.parametrize("network,organization", CONFIGS)
def test_table4_setup_cost(benchmark, report, network, organization):
    setup_ms = benchmark.pedantic(
        run_setup, args=(network, organization), rounds=1, iterations=1
    )
    paper = TABLE4[(network, organization)]
    report(
        "Table 4 (connection setup)",
        f"{network} {organization}",
        setup_ms,
        paper,
        "ms",
    )
    assert 0.5 <= setup_ms / paper <= 2.0


def test_table4_ordering(benchmark):
    """Ultrix < Mach/UX < ours: each layer of indirection at setup."""

    def run():
        return {
            org: run_setup("ethernet", org)
            for org in ("ultrix", "mach-ux", "userlib")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["ultrix"] < r["mach-ux"] < r["userlib"]
    # Paper: ours is a noticeable multiple of the kernel's cost.
    assert r["userlib"] / r["ultrix"] >= 3.0


def test_table4_an1_bqi_premium(benchmark):
    """Paper: "slightly higher for the AN1 because the machinery
    involved to setup the BQI has to be exercised"."""

    def run():
        return {
            net: run_setup(net, "userlib")
            for net in ("ethernet", "an1")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["an1"] > r["ethernet"]
    assert r["an1"] - r["ethernet"] < 2.0  # "slightly": well under 2 ms.


def run_breakdown() -> dict:
    """One instrumented connect; returns phase durations in ms."""
    testbed = Testbed(network="ethernet", organization="userlib")
    done = {}

    def server():
        listener = yield from testbed.service_b.listen(4300)
        conn = yield from listener.accept()
        yield from conn.recv(64)

    def client():
        # Warm the ARP cache so the breakdown is pure setup.
        yield from testbed.host_a.resolve_link(IP_B)
        start = testbed.sim.now
        conn = yield from testbed.service_a.connect(IP_B, 4300)
        done["total_ms"] = (testbed.sim.now - start) * 1e3
        yield from conn.send(b"ok")

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    b = testbed.registry_a.last_breakdown
    out = {
        "total": done["total_ms"],
        "remote_and_back": b["remote_and_back"] * 1e3,
        "non_overlapped_outbound": b["non_overlapped_outbound"] * 1e3,
        "channel_setup": b["channel_setup"] * 1e3,
        "state_transfer": b["state_transfer"] * 1e3,
    }
    # App<->server IPC: what the app saw minus what the registry spent.
    registry_span = (b["reply_at"] - b["request_at"]) * 1e3
    out["app_server_ipc"] = max(0.0, out["total"] - registry_span)
    return out


def test_table4_breakdown(benchmark, report):
    """The five components of our Ethernet setup cost (paper §4)."""
    r = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    for key, paper in TABLE4_BREAKDOWN.items():
        report("Table 4 breakdown (ours, Ethernet)", key, r[key], paper, "ms")
    # The bulk of the cost is reaching the remote peer through the
    # registry's slow device path (paper: 4.6 of 11.9 ms).
    assert r["remote_and_back"] == max(
        r[k] for k in TABLE4_BREAKDOWN
    )
    # Channel setup is the second-largest component (paper: 3.4 ms).
    assert r["channel_setup"] >= r["state_transfer"]
    assert r["channel_setup"] >= r["non_overlapped_outbound"]
    # Components are all non-trivial and sum close to the total.
    component_sum = sum(r[k] for k in TABLE4_BREAKDOWN)
    assert component_sum == pytest.approx(r["total"], rel=0.25)
