"""Ablation: packet demultiplexing style.

Paper §2.2: CSPF-style interpretation "offers flexibility ... [but] is
not likely to scale with CPU speeds because it is memory intensive",
BPF "provides higher performance", and synthesized demux code "requires
only a few instructions".  We run the same transfer under all three
demux styles, then again with extra connections installed to show the
interpreted filters' linear scan cost growing with connection count.
"""

from repro.metrics import measure_throughput
from repro.netio.template import tcp_send_template
from repro.testbed import IP_A, IP_B, MAC_A, Testbed

STYLES = ("synthesized", "bpf", "cspf")


def add_background_channels(testbed: Testbed, count: int) -> None:
    """Install extra (idle) connections so demux has to scan past them.

    Installed *before* the measured connection exists, so the scan
    tier holds their filters first and the real connection's filter is
    interpreted last — the worst case for interpretation.  The indexed
    tiers don't care about order (that is the point of the ablation).
    """
    netio = testbed.host_b.netio

    def setup():
        for i in range(count):
            yield from netio.create_channel(
                testbed.registry_b.task,
                testbed.app_b,
                tcp_send_template(IP_B, 20000 + i, IP_A, 30000 + i),
                local_ip=IP_B,
                local_port=20000 + i,
                remote_ip=IP_A,
                remote_port=30000 + i,
                link_dst=MAC_A,
            )

    proc = testbed.spawn(setup(), name="bg-channels")
    testbed.run(until=proc)


def run_filter_ablation() -> dict:
    out = {}
    for style in STYLES:
        for extra in (0, 16):
            testbed = Testbed(
                network="ethernet",
                organization="userlib",
                demux_style=style,
            )
            if extra:
                add_background_channels(testbed, extra)
            result = measure_throughput(
                testbed, total_bytes=300_000, chunk_size=4096
            )
            out[(style, extra)] = result.throughput_mbps
    return out


def test_ablation_filter_style(benchmark, report):
    r = benchmark.pedantic(run_filter_ablation, rounds=1, iterations=1)
    for style in STYLES:
        report(
            "Ablation: demux style (Ethernet)",
            f"{style}: 0 vs 16 extra connections",
            r[(style, 0)],
            r[(style, 16)],
            "Mb/s",
        )
    # With one connection: synthesized >= bpf >= cspf.
    assert r[("synthesized", 0)] >= r[("bpf", 0)] >= r[("cspf", 0)]
    # Interpretation degrades with connection count; synthesized demux
    # (a single compiled dispatch) holds up far better.
    cspf_degradation = r[("cspf", 0)] / r[("cspf", 16)]
    synth_degradation = r[("synthesized", 0)] / r[("synthesized", 16)]
    assert cspf_degradation > synth_degradation
    assert cspf_degradation > 1.15  # Noticeably slower with 16 filters.
