"""Figure 1: alternative organizations of protocols, quantified.

The paper's Figure 1 is a taxonomy diagram: in-kernel monolithic,
single-server monolithic (Mach/UX, mapped or unmapped device),
dedicated-servers, and the proposed user-level library.  We make it a
measurement: the same TCP workload runs under all five organizations and
we report throughput plus the structural counters (traps, IPC messages,
context switches) that explain the differences — the address-space
crossings per kilobyte ARE the figure.
"""

from repro.metrics import measure_throughput
from repro.testbed import ORGANIZATIONS, Testbed

KB = 400  # Transfer size in KB for the comparison.


def run_all_organizations() -> dict:
    out = {}
    for org in ORGANIZATIONS:
        testbed = Testbed(network="ethernet", organization=org)
        result = measure_throughput(
            testbed, total_bytes=KB * 1024, chunk_size=4096
        )
        counters_a = dict(testbed.host_a.kernel.counters)
        counters_b = dict(testbed.host_b.kernel.counters)
        out[org] = {
            "throughput": result.throughput_mbps,
            "ipc_per_kb": (
                counters_a.get("ipc_messages", 0)
                + counters_b.get("ipc_messages", 0)
            ) / KB,
            "traps_per_kb": (
                counters_a.get("traps", 0) + counters_b.get("traps", 0)
            ) / KB,
            "fast_traps_per_kb": (
                counters_a.get("fast_traps", 0)
                + counters_b.get("fast_traps", 0)
            ) / KB,
        }
    return out


def test_figure1_organization_taxonomy(benchmark, report):
    results = benchmark.pedantic(run_all_organizations, rounds=1, iterations=1)
    for org in ORGANIZATIONS:
        report(
            "Figure 1 (organizations, Ethernet @4096B)",
            f"{org} throughput",
            results[org]["throughput"],
            results["ultrix"]["throughput"],  # Relative to in-kernel.
            "Mb/s",
        )

    # The 'rare case' dedicated-servers organization loses on the common
    # path: every packet crosses extra address spaces.
    dedicated = results["dedicated"]["throughput"]
    for org in ("ultrix", "mach-ux", "userlib"):
        assert dedicated < results[org]["throughput"]

    # Paper §1.2: the message-based (unmapped-device) single-server
    # variant performs worse than the mapped one.
    assert (
        results["mach-ux-unmapped"]["throughput"]
        < results["mach-ux"]["throughput"]
    )

    # The library organization beats every server-based organization.
    for org in ("mach-ux", "mach-ux-unmapped", "dedicated"):
        assert results["userlib"]["throughput"] > results[org]["throughput"]

    # Structural counters: server organizations live on IPC; the library
    # uses the specialized trap; the kernel organization uses plain
    # traps and nothing else.
    assert results["mach-ux"]["ipc_per_kb"] > 0.5
    assert (
        results["dedicated"]["ipc_per_kb"]
        > results["mach-ux"]["ipc_per_kb"] * 1.5
    )
    assert results["userlib"]["fast_traps_per_kb"] > 0.2
    assert results["userlib"]["ipc_per_kb"] < 0.1  # Setup only.
    assert results["ultrix"]["ipc_per_kb"] == 0
    assert results["ultrix"]["fast_traps_per_kb"] == 0
