"""Shared benchmark fixtures and the paper-vs-measured report.

Benchmarks run the simulated workloads under pytest-benchmark (wall-time
of the simulation run) while asserting the *simulated-time* results
reproduce the paper's shape.  A session-scoped collector prints the full
paper-vs-measured comparison at the end of the run.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

_REPORT_ROWS: list[tuple[str, str, float, float, str]] = []


def record(table: str, label: str, measured: float, paper: float, unit: str) -> None:
    """Collect one paper-vs-measured datum for the end-of-run report."""
    _REPORT_ROWS.append((table, label, measured, paper, unit))


@pytest.fixture
def report():
    return record


def pytest_terminal_summary(terminalreporter):
    if not _REPORT_ROWS:
        return
    tr = terminalreporter
    tr.section("paper vs measured")
    current_table = None
    for table, label, measured, paper, unit in _REPORT_ROWS:
        if table != current_table:
            tr.write_line(f"--- {table} ---")
            current_table = table
        ratio = measured / paper if paper else float("nan")
        tr.write_line(
            f"  {label:42s} measured {measured:9.2f} {unit:5s}"
            f"  paper {paper:9.2f}  (x{ratio:.2f})"
        )
