"""Table 3: round-trip latency by organization, network, and size.

Paper §4: "The latency is measured by doing a simple ping-pong test
between two applications.  The first application sends data to the
second, which in turn, sends the same amount of data back."
"""

import pytest
from paper_targets import TABLE3, TABLE3_SIZES

from repro.metrics import measure_latency
from repro.testbed import Testbed

CONFIGS = [
    pytest.param(net, org, id=f"{net}-{org}")
    for (net, org) in TABLE3
]


def run_row(network: str, organization: str) -> dict:
    row = {}
    for size in TABLE3_SIZES:
        testbed = Testbed(network=network, organization=organization)
        result = measure_latency(testbed, message_size=size, rounds=40)
        row[size] = result.rtt_ms
    return row


@pytest.mark.parametrize("network,organization", CONFIGS)
def test_table3_row(benchmark, report, network, organization):
    row = benchmark.pedantic(
        run_row, args=(network, organization), rounds=1, iterations=1
    )
    paper_row = TABLE3[(network, organization)]
    for size in TABLE3_SIZES:
        report(
            "Table 3 (round-trip latency)",
            f"{network} {organization} @{size}B",
            row[size],
            paper_row[size],
            "ms",
        )
    # Shape: latency increases with message size.
    sizes = list(TABLE3_SIZES)
    for small, large in zip(sizes, sizes[1:]):
        assert row[large] > row[small]
    # Absolute sanity: within a factor of 2 of the paper's value.
    for size in TABLE3_SIZES:
        assert 0.5 <= row[size] / paper_row[size] <= 2.0


def _rtt(network, organization, size):
    testbed = Testbed(network=network, organization=organization)
    return measure_latency(testbed, message_size=size, rounds=40).rtt_ms


def test_table3_ethernet_ordering(benchmark):
    """Paper: "latencies on the Ethernet are significantly reduced from
    the Mach/UX monolithic implementation and [are] on average about
    61% higher than the Ultrix implementation"."""

    def run():
        return {
            org: _rtt("ethernet", org, 512)
            for org in ("ultrix", "userlib", "mach-ux")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["ultrix"] < r["userlib"] < r["mach-ux"]
    assert r["mach-ux"] / r["userlib"] >= 1.3


def test_table3_an1_latencies_lower_than_ethernet(benchmark):
    """The 100 Mb/s link cuts transmission time dramatically."""

    def run():
        return {
            net: _rtt(net, "userlib", 1460)
            for net in ("ethernet", "an1")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["an1"] < r["ethernet"] * 0.6


def test_table3_an1_gap_about_40_percent(benchmark):
    """Paper: "On the AN1, the difference between Ultrix and our
    implementation is about 40%" (we assert it stays well under the
    Ethernet-era multiples)."""

    def run():
        return {
            org: _rtt("an1", org, 512)
            for org in ("ultrix", "userlib")
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 1.0 <= r["userlib"] / r["ultrix"] <= 1.6
