"""Congestion-control race: Reno vs CUBIC vs BBR through the dumbbell.

Every algorithm drives the same 10 Mb/s trunk with the same finite
egress queue, under both tail-drop and RED.  Nothing is scripted: loss
(or, for BBR, the delivery-rate signal) emerges from real queue
dynamics, so this is where the pluggable congestion-control extraction
either reproduces the textbook behaviours or doesn't.

Reported per algorithm and discipline:

* aggregate goodput vs the 10 Mb/s trunk;
* Jain's fairness index across flows of the *same* algorithm
  (intra-algorithm) and across per-algorithm goodput when the three
  algorithms share one bottleneck (inter-algorithm);
* flow-completion-time p50/p99;
* bottleneck queue occupancy (mean and p99 of the sampled
  fraction-of-capacity histogram) — the bufferbloat axis, where a
  rate-based model should sit well below the loss-based probers.

Run standalone for CI smoke: ``python benchmarks/bench_congestion.py
--quick`` (guarded against ``baselines/congestion_quick.json``).
"""

import argparse
import json
import sys
from pathlib import Path

from repro.metrics import jain_fairness, measure_fabric_transfers
from repro.protocols.tcp import CC_ALGORITHMS, TcpConfig
from repro.testbed import FabricTestbed

TRUNK_MBPS = 10.0

#: The headline arm: enough flows that loss-based probing saturates
#: the 48 KB queue, and flows long enough that AIMD/cubic convergence
#: (not slow-start luck) sets the fairness number.
RACE_PAIRS = 16
RACE_BYTES = 800_000

#: The bufferbloat arm: few enough flows that BBR's BDP-derived
#: inflight cap binds below what the loss-based stacks keep in flight,
#: so the standing-queue difference is the algorithm's doing.
BLOAT_PAIRS = 3
BLOAT_BYTES = 250_000

BASELINE_PATH = Path(__file__).parent / "baselines" / "congestion_quick.json"
#: Regression guards on the quick arm: goodput may not fall below
#: recorded/GOODPUT_SLACK; fairness not below recorded - FAIRNESS_DELTA.
GOODPUT_SLACK = 1.25
FAIRNESS_DELTA = 0.05


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of a sequence (q in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def occupancy_percentile(queue, q: float) -> float:
    """Occupancy (fraction of capacity) at quantile ``q`` from the
    queue's sampled bucket histogram; returns the bucket's upper edge."""
    samples = sum(queue.occupancy)
    if not samples:
        return 0.0
    threshold = q * samples
    seen = 0
    for index, count in enumerate(queue.occupancy):
        seen += count
        if seen >= threshold:
            return (index + 1) / queue.BUCKETS
    return 1.0


def summarize(fabric, result) -> dict:
    queue = fabric.bottleneck.queue
    fcts = [f.elapsed for f in result.flows if f.bytes_moved]
    return {
        "aggregate_mbps": result.aggregate_mbps,
        "fairness": result.fairness,
        "fct_p50": percentile(fcts, 0.50),
        "fct_p99": percentile(fcts, 0.99),
        "queue_mean": queue.mean_occupancy(),
        "queue_p99": occupancy_percentile(queue, 0.99),
        "bottleneck_drops": result.bottleneck_drops,
        "retransmits": result.total_retransmits,
    }


def run_race(cc: str, pairs: int, bytes_per_flow: int, red: bool = False):
    """Homogeneous arm: every flow runs ``cc`` through one bottleneck."""
    fabric = FabricTestbed(
        kind="dumbbell", pairs=pairs, red=red, config=TcpConfig(cc=cc)
    )
    result = measure_fabric_transfers(fabric, bytes_per_flow=bytes_per_flow)
    for flow in result.flows:
        assert flow.bytes_moved == bytes_per_flow, (
            f"{cc}: flow {flow.index} moved only "
            f"{flow.bytes_moved}/{bytes_per_flow} bytes"
        )
    assert result.other_drops == 0
    return fabric, result


def run_mixed(pairs: int, bytes_per_flow: int, red: bool = False):
    """Heterogeneous arm: pair ``i`` runs ``CC_ALGORITHMS[i % 3]``, all
    sharing the trunk.  Inter-algorithm fairness is Jain over the mean
    per-flow goodput of each algorithm."""
    assignment = {
        i: CC_ALGORITHMS[i % len(CC_ALGORITHMS)] for i in range(pairs)
    }
    configs = {cc: TcpConfig(cc=cc) for cc in CC_ALGORITHMS}

    def config_for(host_name: str):
        index = int(host_name[1:])
        return configs[assignment[index]]

    fabric = FabricTestbed(
        kind="dumbbell", pairs=pairs, red=red, config_for=config_for
    )
    result = measure_fabric_transfers(fabric, bytes_per_flow=bytes_per_flow)
    per_algo: dict[str, list[float]] = {cc: [] for cc in CC_ALGORITHMS}
    for flow in result.flows:
        per_algo[assignment[flow.index]].append(flow.throughput_mbps)
    means = {
        cc: sum(v) / len(v) for cc, v in per_algo.items() if v
    }
    return fabric, result, {
        "inter_fairness": jain_fairness(list(means.values())),
        "per_algorithm_mbps": means,
    }


def run_matrix(pairs: int, bytes_per_flow: int) -> dict:
    """The full race: every algorithm under tail-drop and RED."""
    matrix: dict[str, dict] = {}
    for red in (False, True):
        discipline = "red" if red else "taildrop"
        for cc in CC_ALGORITHMS:
            fabric, result = run_race(cc, pairs, bytes_per_flow, red=red)
            matrix[f"{discipline}/{cc}"] = summarize(fabric, result)
    return matrix


def check_acceptance(matrix: dict, bloat: dict) -> list[str]:
    """The PR's acceptance bars, returned as human-readable lines."""
    lines = []
    # Loss-based algorithms converge to a fair share at 16 flows.
    for cc in ("reno", "cubic"):
        fairness = matrix[f"taildrop/{cc}"]["fairness"]
        assert fairness >= 0.9, f"{cc} fairness {fairness:.3f} < 0.9"
        lines.append(f"{cc} intra-fairness {fairness:.3f} >= 0.9")
    # The bufferbloat claim: BBR keeps the tail-drop queue visibly
    # shorter than every loss-based prober (judged where its inflight
    # cap can bind: the few-flow arm).
    bbr_p99 = bloat["bbr"]["queue_p99"]
    for cc in ("reno", "cubic"):
        loss_p99 = bloat[cc]["queue_p99"]
        assert bbr_p99 < loss_p99, (
            f"bbr p99 occupancy {bbr_p99:.2f} not below {cc} {loss_p99:.2f}"
        )
    lines.append(
        "bbr p99 queue occupancy "
        f"{bbr_p99:.2f} < reno {bloat['reno']['queue_p99']:.2f}, "
        f"cubic {bloat['cubic']['queue_p99']:.2f} (taildrop)"
    )
    return lines


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_congestion_race(benchmark, report):
    matrix = benchmark.pedantic(
        run_matrix, args=(RACE_PAIRS, RACE_BYTES), rounds=1, iterations=1
    )
    bloat = {
        cc: summarize(*run_race(cc, BLOAT_PAIRS, BLOAT_BYTES))
        for cc in CC_ALGORITHMS
    }
    check_acceptance(matrix, bloat)
    for key, stats in matrix.items():
        report(
            "Congestion race (16 flows, 10 Mb/s trunk)",
            f"{key}: goodput",
            stats["aggregate_mbps"],
            TRUNK_MBPS,
            "Mbps",
        )
        report(
            "Congestion race (16 flows, 10 Mb/s trunk)",
            f"{key}: Jain fairness",
            stats["fairness"],
            1.0,
            "",
        )


def test_congestion_mixed(report):
    _, result, mixed = run_mixed(RACE_PAIRS, RACE_BYTES)
    assert all(f.bytes_moved == RACE_BYTES for f in result.flows)
    report(
        "Congestion race (16 flows, 10 Mb/s trunk)",
        "mixed: inter-algorithm fairness",
        mixed["inter_fairness"],
        1.0,
        "",
    )


# ----------------------------------------------------------------------
# Standalone CLI (CI smoke + baseline guard)
# ----------------------------------------------------------------------


def quick_stats() -> dict:
    """The small deterministic arm the baseline guards."""
    stats = {}
    for cc in CC_ALGORITHMS:
        fabric, result = run_race(cc, BLOAT_PAIRS, 80_000)
        stats[cc] = summarize(fabric, result)
    _, _, mixed = run_mixed(BLOAT_PAIRS * 2, 80_000)
    stats["mixed_inter_fairness"] = mixed["inter_fairness"]
    return stats


def check_baseline(stats: dict) -> str:
    if not BASELINE_PATH.exists():
        return "baseline: none recorded (run --update-baseline)"
    baseline = json.loads(BASELINE_PATH.read_text())
    for cc in CC_ALGORITHMS:
        floor = baseline[cc]["aggregate_mbps"] / GOODPUT_SLACK
        assert stats[cc]["aggregate_mbps"] >= floor, (
            f"{cc} goodput {stats[cc]['aggregate_mbps']:.3f} Mb/s < floor "
            f"{floor:.3f} (recorded {baseline[cc]['aggregate_mbps']:.3f})"
        )
        fairness_floor = baseline[cc]["fairness"] - FAIRNESS_DELTA
        assert stats[cc]["fairness"] >= fairness_floor, (
            f"{cc} fairness {stats[cc]['fairness']:.3f} < floor "
            f"{fairness_floor:.3f}"
        )
    mixed_floor = baseline["mixed_inter_fairness"] - FAIRNESS_DELTA
    assert stats["mixed_inter_fairness"] >= mixed_floor, (
        f"mixed inter-fairness {stats['mixed_inter_fairness']:.3f} < "
        f"floor {mixed_floor:.3f}"
    )
    return (
        "baseline: ok ("
        + ", ".join(
            f"{cc} {stats[cc]['aggregate_mbps']:.2f} Mb/s vs recorded "
            f"{baseline[cc]['aggregate_mbps']:.2f}"
            for cc in CC_ALGORITHMS
        )
        + ")"
    )


def print_stats(title: str, stats: dict) -> None:
    print(f"--- {title} ---")
    for key, s in stats.items():
        if not isinstance(s, dict):
            continue
        print(
            f"  {key:16s} goodput {s['aggregate_mbps']:5.2f} Mb/s  "
            f"fair {s['fairness']:.3f}  "
            f"fct p50/p99 {s['fct_p50'] * 1e3:6.1f}/{s['fct_p99'] * 1e3:6.1f} ms  "
            f"queue mean/p99 {s['queue_mean']:.2f}/{s['queue_p99']:.2f}  "
            f"drops {s['bottleneck_drops']}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reno vs CUBIC vs BBR through the dumbbell bottleneck"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small per-algorithm runs + the baseline guard",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the quick arm as the new baseline",
    )
    args = parser.parse_args(argv)

    if args.quick or args.update_baseline:
        stats = quick_stats()
        print_stats("quick race (4 pairs, 80 KB)", stats)
        print(f"  mixed inter-fairness {stats['mixed_inter_fairness']:.3f}")
        if args.update_baseline:
            BASELINE_PATH.parent.mkdir(exist_ok=True)
            BASELINE_PATH.write_text(json.dumps(stats, indent=2) + "\n")
            print(f"baseline recorded to {BASELINE_PATH}")
        else:
            print(check_baseline(stats))
        print("ok")
        return 0

    matrix = run_matrix(RACE_PAIRS, RACE_BYTES)
    print_stats(f"race ({RACE_PAIRS} pairs, {RACE_BYTES // 1000} KB)", matrix)
    bloat = {
        cc: summarize(*run_race(cc, BLOAT_PAIRS, BLOAT_BYTES))
        for cc in CC_ALGORITHMS
    }
    print_stats(f"bufferbloat arm ({BLOAT_PAIRS} pairs, taildrop)", bloat)
    _, _, mixed = run_mixed(RACE_PAIRS, RACE_BYTES)
    print(f"mixed inter-algorithm fairness: {mixed['inter_fairness']:.3f}")
    for cc, mbps in mixed["per_algorithm_mbps"].items():
        print(f"  {cc:6s} mean per-flow {mbps:.3f} Mb/s")
    for line in check_acceptance(matrix, bloat):
        print(f"accept: {line}")
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
