"""Demux scaling: flat indexed lookup vs linear interpreted scan.

The paper's Table 5 quotes a single 52 µs software-demux cost with no
dependence on connection count — defensible only because synthesized
demux is an indexed lookup.  This bench drives the actual receive path
with 1 → 256 concurrent channels installed and measures the per-packet
receiver CPU attributable to demultiplexing (Table 5 methodology:
itemized non-demux costs subtracted):

* **synthesized** (flow-table exact tier): cost stays flat within 10%
  from 1 to 256 channels;
* **cspf** (legacy scan tier): cost grows linearly with the number of
  filters scanned — the organization the paper argues "is not likely
  to scale".

The packet always targets the *last-installed* channel, so the scan
tier pays its worst case while the hash tier is, by construction,
indifferent.
"""

from repro.costs import DECSTATION_5000_200
from repro.mach import Kernel
from repro.metrics import demux_profile
from repro.net import EthernetLink, PmaddNic, str_to_ip, str_to_mac
from repro.net.headers import ETHERTYPE_IP, EthernetHeader, Ipv4Header, PROTO_TCP, TCP_ACK
from repro.netio import NetworkIoModule, tcp_send_template
from repro.protocols.tcp import Segment, encode_segment
from repro.sim import Simulator

COSTS = DECSTATION_5000_200
IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")

CHANNEL_COUNTS = (1, 4, 16, 64, 256)
TARGET_PORT = 6000
ROUNDS = 30


def target_frame() -> bytes:
    seg = Segment(
        sport=5000, dport=TARGET_PORT, seq=1, ack=1, flags=TCP_ACK,
        window=0, payload=b"x" * 32,
    )
    tcp = encode_segment(seg, IP_A, IP_B)
    ip = Ipv4Header(
        src=IP_A, dst=IP_B, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(tcp),
    ).pack() + tcp
    return EthernetHeader(MAC_B, MAC_A, ETHERTYPE_IP).pack() + ip


def measure_demux_us(style: str, n_channels: int) -> float:
    """Per-packet receiver demux cost (µs) with ``n_channels`` flows."""
    sim = Simulator()
    link = EthernetLink(sim)
    kernel_a = Kernel(sim, COSTS, name="A")
    kernel_b = Kernel(sim, COSTS, name="B")
    nic_a = PmaddNic(kernel_a, link, MAC_A, name="ethA")
    nic_b = PmaddNic(kernel_b, link, MAC_B, name="ethB")
    io_a = NetworkIoModule(kernel_a, nic_a, style)
    io_b = NetworkIoModule(kernel_b, nic_b, style)
    registry_b = kernel_b.create_task("registryB", privileged=True)
    app_b = kernel_b.create_task("appB")
    results = {}

    def scenario():
        # Decoy channels first: the target's filter lands *last* in the
        # scan tier, the interpreted worst case.
        for i in range(n_channels - 1):
            yield from io_b.create_channel(
                registry_b, app_b,
                tcp_send_template(IP_B, 20000 + i, IP_A, 30000 + i),
                local_ip=IP_B, local_port=20000 + i,
                remote_ip=IP_A, remote_port=30000 + i, link_dst=MAC_A,
            )
        target = yield from io_b.create_channel(
            registry_b, app_b,
            tcp_send_template(IP_B, TARGET_PORT, IP_A, 5000),
            local_ip=IP_B, local_port=TARGET_PORT,
            remote_ip=IP_A, remote_port=5000, link_dst=MAC_A,
        )
        frame = target_frame()
        busy_before = kernel_b.cpu.busy_time
        for _ in range(ROUNDS):
            yield from io_a.kernel_send(
                frame[EthernetHeader.LENGTH:], MAC_B
            )
            yield from target.receive_batch()
        # Let the final notification's kernel-side charge drain before
        # reading the CPU counter.
        yield sim.timeout(1e-3)
        results["per_packet"] = (
            kernel_b.cpu.busy_time - busy_before
        ) / ROUNDS
        results["delivered"] = target.stats["delivered"]

    sim.run(until=sim.process(scenario(), name="bench"))
    assert results["delivered"] == ROUNDS

    frame_len = len(target_frame())
    non_demux = (
        COSTS.interrupt
        + COSTS.pio_cost(frame_len)
        + COSTS.eth_user_delivery
        + COSTS.semaphore_signal
        + COSTS.cthread_sync_op
    )
    return (results["per_packet"] - non_demux) * 1e6


def run_scaling() -> dict:
    out = {}
    for style in ("synthesized", "cspf"):
        for n in CHANNEL_COUNTS:
            out[(style, n)] = measure_demux_us(style, n)
    return out


def test_demux_scaling_flat_vs_linear(benchmark, report):
    r = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    for n in CHANNEL_COUNTS:
        report(
            "Demux scaling (per-packet cost vs channels)",
            f"{n} channels: synthesized vs cspf scan",
            r[("synthesized", n)],
            r[("cspf", n)],
            "us",
        )
    # The indexed path is flat: within 10% across 1 -> 256 channels.
    synth = [r[("synthesized", n)] for n in CHANNEL_COUNTS]
    assert max(synth) <= min(synth) * 1.10
    # And it is the paper's 52 us figure at every scale.
    for cost in synth:
        assert abs(cost - COSTS.flow_lookup * 1e6) < 5.0
    # The interpreted scan grows with channel count - monotonically,
    # and by more than an order of magnitude over the sweep.
    scan = [r[("cspf", n)] for n in CHANNEL_COUNTS]
    assert all(a < b for a, b in zip(scan, scan[1:]))
    assert scan[-1] > scan[0] * 10


def test_demux_scaling_tier_counters():
    """The flow table's own counters corroborate the cost shape."""
    sim_cost = measure_demux_us("synthesized", 64)
    assert sim_cost > 0
    # Re-run one config and inspect the profile directly.
    sim = Simulator()
    link = EthernetLink(sim)
    kernel_a = Kernel(sim, COSTS, name="A")
    kernel_b = Kernel(sim, COSTS, name="B")
    nic_a = PmaddNic(kernel_a, link, MAC_A, name="ethA")
    nic_b = PmaddNic(kernel_b, link, MAC_B, name="ethB")
    io_a = NetworkIoModule(kernel_a, nic_a, "synthesized")
    io_b = NetworkIoModule(kernel_b, nic_b, "synthesized")
    registry_b = kernel_b.create_task("registryB", privileged=True)
    app_b = kernel_b.create_task("appB")

    class HostView:
        name = "B"
        netio = io_b

    def scenario():
        target = yield from io_b.create_channel(
            registry_b, app_b,
            tcp_send_template(IP_B, TARGET_PORT, IP_A, 5000),
            local_ip=IP_B, local_port=TARGET_PORT,
            remote_ip=IP_A, remote_port=5000, link_dst=MAC_A,
        )
        frame = target_frame()
        for _ in range(10):
            yield from io_a.kernel_send(frame[EthernetHeader.LENGTH:], MAC_B)
            yield from target.receive_batch()

    sim.run(until=sim.process(scenario(), name="bench"))
    profile = demux_profile(HostView)
    assert profile.exact_hits == 10
    assert profile.misses == 0
    assert profile.mean_scan_len == 0.0
