"""Table 5: hardware/software packet demultiplexing tradeoffs.

Paper §4: per-packet demux cost is ~52 µs for software demux on the
Lance Ethernet and ~50 µs for the AN1's hardware BQI path (bookkeeping
included, copy/DMA costs excluded) — "there is no significant
difference in the timing".

We measure the receiver-CPU time attributable to demultiplexing by
delivering single packets through the network I/O module on an
otherwise idle host and subtracting the itemized non-demux costs.
Additionally, pytest-benchmark times our actual classifier
implementations (interpreted stack machine vs synthesized predicate) in
wall-clock terms.
"""

import pytest
from paper_targets import TABLE5

from repro.costs import DECSTATION_5000_200
from repro.net.headers import (
    ETHERTYPE_IP,
    EthernetHeader,
    Ipv4Header,
    PROTO_TCP,
    TCP_ACK,
    str_to_ip,
)
from repro.netio import compile_tcp_demux, tcp_filter_program
from repro.protocols.tcp import Segment, encode_segment
from repro.testbed import IP_A, IP_B, MAC_A, MAC_B, Testbed

COSTS = DECSTATION_5000_200


def frame_for(size: int = 64) -> bytes:
    seg = Segment(
        sport=5000, dport=6000, seq=1, ack=1, flags=TCP_ACK,
        window=0, payload=b"x" * size,
    )
    tcp = encode_segment(seg, IP_A, IP_B)
    ip = Ipv4Header(
        src=IP_A, dst=IP_B, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(tcp),
    ).pack() + tcp
    return EthernetHeader(MAC_B, MAC_A, ETHERTYPE_IP).pack() + ip


def measure_demux_cost(network: str) -> float:
    """Receiver CPU microseconds per packet attributable to demux."""
    from repro.netio.template import tcp_send_template

    testbed = Testbed(network=network, organization="userlib")
    netio_a, netio_b = testbed.host_a.netio, testbed.host_b.netio
    link_a = MAC_B if network == "ethernet" else 2
    link_b = MAC_A if network == "ethernet" else 1
    packet = frame_for()[EthernetHeader.LENGTH:]
    results = {}

    def scenario():
        chan_a = yield from netio_a.create_channel(
            testbed.registry_a.task, testbed.app_a,
            tcp_send_template(IP_A, 5000, IP_B, 6000),
            local_ip=IP_A, local_port=5000,
            remote_ip=IP_B, remote_port=6000, link_dst=link_a,
        )
        chan_b = yield from netio_b.create_channel(
            testbed.registry_b.task, testbed.app_b,
            tcp_send_template(IP_B, 6000, IP_A, 5000),
            local_ip=IP_B, local_port=6000,
            remote_ip=IP_A, remote_port=5000, link_dst=link_b,
        )
        if network == "an1":
            netio_a.set_peer_bqi(
                testbed.registry_a.task, chan_a, chan_b.ring.bqi
            )
        n = 50
        busy_before = testbed.host_b.kernel.cpu.busy_time
        for _ in range(n):
            yield from netio_a.send(testbed.app_a, chan_a, packet)
            # Drain so batching doesn't skew the signal accounting.
            yield from chan_b.receive_batch()
        busy = testbed.host_b.kernel.cpu.busy_time - busy_before
        results["per_packet"] = busy / n
        return results

    proc = testbed.spawn(scenario(), name="bench")
    testbed.run(until=proc)

    per_packet = results["per_packet"]
    # Subtract the itemized non-demux receiver costs, per the paper's
    # methodology ("only the cost of software/hardware packet
    # demultiplexing; copy and DMA costs are not included").
    non_demux = COSTS.semaphore_signal + COSTS.cthread_sync_op
    if network == "ethernet":
        non_demux += (
            COSTS.interrupt
            + COSTS.pio_cost(len(packet) + EthernetHeader.LENGTH)
            + COSTS.eth_user_delivery
        )
    else:
        non_demux += COSTS.interrupt
    return (per_packet - non_demux) * 1e6


def test_table5_software_demux_cost(benchmark, report):
    cost_us = benchmark.pedantic(
        measure_demux_cost, args=("ethernet",), rounds=1, iterations=1
    )
    report(
        "Table 5 (demux cost)", "Lance Ethernet (software)",
        cost_us, TABLE5["ethernet-software"], "us",
    )
    assert cost_us == pytest.approx(TABLE5["ethernet-software"], rel=0.25)


def test_table5_hardware_bqi_cost(benchmark, report):
    cost_us = benchmark.pedantic(
        measure_demux_cost, args=("an1",), rounds=1, iterations=1
    )
    report(
        "Table 5 (demux cost)", "AN1 (hardware BQI)",
        cost_us, TABLE5["an1-hardware-bqi"], "us",
    )
    assert cost_us == pytest.approx(TABLE5["an1-hardware-bqi"], rel=0.25)


def test_table5_no_significant_difference(benchmark):
    """Paper: "there is no significant difference in the timing"."""

    def run():
        return measure_demux_cost("ethernet"), measure_demux_cost("an1")

    sw, hw = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(sw - hw) <= 15.0  # Microseconds.


# ----------------------------------------------------------------------
# Wall-clock speed of the actual classifiers (our implementation).
# ----------------------------------------------------------------------

FRAME = frame_for()


def test_classifier_wallclock_interpreted(benchmark):
    program = tcp_filter_program(IP_B, 6000, IP_A, 5000)
    assert program.run(FRAME)
    benchmark(program.run, FRAME)


def test_classifier_wallclock_synthesized(benchmark):
    demux = compile_tcp_demux(IP_B, 6000, IP_A, 5000)
    assert demux.run(FRAME)
    benchmark(demux.run, FRAME)
