"""Ablation: the AN1 driver's 1500-byte frame restriction.

Paper §4: "The observed throughput on AN1 is lower than the maximum the
network can support.  The primary reason for this is that the AN1
driver does not currently use maximum sized AN1 packets which can be as
large as 64K bytes: it encapsulates data into an Ethernet datagram and
restricts network transmissions to 1500-byte packets."

Lifting the driver restriction (the hardware always supported it) must
raise throughput substantially: per-packet CPU costs amortize over far
more bytes.
"""

from repro.metrics import measure_throughput
from repro.protocols.tcp import TcpConfig
from repro.testbed import Testbed


def run_frame_ablation() -> dict:
    out = {}
    for mtu, mss, label in (
        (1500, 1460, "driver-limited-1500"),
        (65536, 16384, "full-an1-frames"),
    ):
        testbed = Testbed(
            network="an1",
            organization="userlib",
            an1_driver_mtu=mtu,
            config=TcpConfig(
                mss=mss,
                # Pre-window-scaling TCP: buffers capped near 64 KB.
                rcv_buffer=61440 if mss > 1460 else 16384,
                snd_buffer=61440 if mss > 1460 else 16384,
            ),
        )
        result = measure_throughput(
            testbed, total_bytes=2_000_000 if mss > 1460 else 400_000,
            chunk_size=mss,
        )
        out[label] = result.throughput_mbps
    return out


def test_ablation_an1_frame_size(benchmark, report):
    r = benchmark.pedantic(run_frame_ablation, rounds=1, iterations=1)
    report(
        "Ablation: AN1 frame size",
        "64KB frames vs 1500B encapsulation",
        r["full-an1-frames"],
        r["driver-limited-1500"],
        "Mb/s",
    )
    # Large frames amortize per-packet costs: at least 3x the throughput.
    assert r["full-an1-frames"] >= 3.0 * r["driver-limited-1500"]
