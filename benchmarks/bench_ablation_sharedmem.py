"""Ablation: shared-memory (zero-copy) buffer organization.

Paper §4: "our implementation uses a buffer organization that
eliminates byte copying" — the reason the library *wins* against Ultrix
at 512-byte packets on AN1.  Re-enabling conventional copies between
application buffers and packet buffers must erase that win.
"""

from repro.metrics import measure_throughput
from repro.testbed import Testbed


def run_sharedmem_ablation() -> dict:
    out = {}
    for zero_copy in (True, False):
        for size in (512, 4096):
            testbed = Testbed(
                network="an1", organization="userlib", zero_copy=zero_copy
            )
            result = measure_throughput(
                testbed, total_bytes=400_000, chunk_size=size
            )
            out[(zero_copy, size)] = result.throughput_mbps
    # The Ultrix reference at 512 on AN1 (what we beat thanks to
    # copy elimination).
    testbed = Testbed(network="an1", organization="ultrix")
    out["ultrix-512"] = measure_throughput(
        testbed, total_bytes=400_000, chunk_size=512
    ).throughput_mbps
    return out


def test_ablation_shared_memory(benchmark, report):
    r = benchmark.pedantic(run_sharedmem_ablation, rounds=1, iterations=1)
    for size in (512, 4096):
        report(
            "Ablation: zero-copy buffers (AN1)",
            f"@{size}B zero-copy vs copying",
            r[(True, size)],
            r[(False, size)],
            "Mb/s",
        )
        # Copy elimination always helps.
        assert r[(True, size)] > r[(False, size)]
    # Copies hurt small packets *relatively more* per byte moved?  No:
    # absolute per-byte copy cost is linear, so the 4096 case loses more
    # absolute throughput; the 512 case loses the *crossover*:
    assert r[(True, 512)] > r["ultrix-512"]  # The paper's win...
    assert r[(False, 512)] < r[(True, 512)]  # ...needs zero-copy.
