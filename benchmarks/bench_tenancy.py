"""Multi-tenant sharing of one fabric: N tenants x M flows each.

The tentpole claim: tenancy enforcement (budget admission, template
vetting, per-send token-bucket gates, delivery ownership checks) rides
the trusted layers *without* slowing the data path.  Every check is an
O(1) table consultation at a trap the module already takes, so the
simulated outcome of a tenanted run must be byte-identical to the
untenanted run — the enforcement overhead is pure bookkeeping wall
time, reported here and guarded in CI.

Workload: a dumbbell fabric; flow ``i`` belongs to tenant ``i % N``,
every flow crossing the one shared trunk.  Reported per arm:

- aggregate goodput over the shared bottleneck,
- Jain fairness across *tenants* (per-tenant summed goodput — the
  quota machinery must not starve anyone),
- wall-clock enforcement overhead (tenanted / untenanted),
- per-tenant occupancy profile and the teardown leak sweep.

``--quick`` is the CI smoke: it also compares aggregate goodput and
tenant fairness against ``baselines/tenancy_quick.json`` so an
enforcement hot path that starts costing simulated time (or a quota
bug that starves a tenant) fails the build.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.metrics import jain_fairness, measure_fabric_transfers, tenant_profile
from repro.tenancy import PortGrant, TenantBudget, attach_tenancy
from repro.testbed import FabricTestbed

N_TENANTS = 3
FLOWS_PER_TENANT = 2
QUICK_TENANTS = 2
BASE_PORT = 5000
FULL_BYTES = 150_000
QUICK_BYTES = 60_000

#: The tenanted arm's simulated goodput may deviate from untenanted by
#: at most this relative amount (the checks charge no simulated CPU, so
#: any drift means enforcement leaked into the data path).
MAX_SIM_DRIFT = 1e-9

BASELINE_PATH = Path(__file__).parent / "baselines" / "tenancy_quick.json"
#: Regression guards against the recorded quick baseline.
GOODPUT_SLACK = 1.25  # May not fall below recorded/1.25.
FAIRNESS_FLOOR_DELTA = 0.05  # May not fall more than this below recorded.


def build_fabric(tenants: int, flows_per_tenant: int, tenanted: bool):
    """A dumbbell with one client/server pair per flow; flow ``i``
    belongs to tenant ``i % tenants``."""
    pairs = tenants * flows_per_tenant
    fabric = FabricTestbed(kind="dumbbell", pairs=pairs)
    manager = None
    if tenanted:
        manager = attach_tenancy(fabric)
        per_tenant_ports = {t: [] for t in range(tenants)}
        for i in range(pairs):
            per_tenant_ports[i % tenants].append(BASE_PORT + i)
        for t in range(tenants):
            tenant = manager.create_tenant(
                f"tenant-{t}",
                TenantBudget(
                    # Client + server channel per flow, plus headroom
                    # for the handshake-time pre-allocations.
                    region_bytes=(2 * flows_per_tenant + 1) * 64 * 1024,
                    max_channels=2 * flows_per_tenant + 2,
                    max_templates=2 * flows_per_tenant + 2,
                    ports=PortGrant.of(*per_tenant_ports[t]),
                ),
            )
            for i in range(pairs):
                if i % tenants == t:
                    manager.bind_task(fabric.client_services[i].app, tenant)
                    manager.bind_task(fabric.server_services[i].app, tenant)
    return fabric, manager


def run_arm(tenants: int, flows_per_tenant: int, bytes_per_flow: int,
            tenanted: bool) -> dict:
    fabric, manager = build_fabric(tenants, flows_per_tenant, tenanted)
    wall0 = time.perf_counter()
    result = measure_fabric_transfers(fabric, bytes_per_flow=bytes_per_flow)
    wall = time.perf_counter() - wall0

    per_tenant = [0.0] * tenants
    for i, flow in enumerate(result.flows):
        per_tenant[i % tenants] += flow.throughput_mbps

    arm = {
        "tenanted": tenanted,
        "aggregate_mbps": result.aggregate_mbps,
        "flow_fairness": result.fairness,
        "tenant_fairness": jain_fairness(per_tenant),
        "per_tenant_mbps": per_tenant,
        "wall_seconds": wall,
        "bottleneck_drops": result.bottleneck_drops,
    }
    if manager is not None:
        arm["profiles"] = [
            {
                "tenant": p.tenant_id,
                "channels": p.channels,
                "peak_region_bytes": p.peak_region_bytes,
                "tx_bytes": p.tx_bytes,
                "rejections": p.rejections,
            }
            for p in tenant_profile(manager)
        ]
        arm["leaks"] = {
            t.tenant_id: leaks
            for t in manager
            if (leaks := t.teardown())
        }
    return arm


def run_comparison(tenants: int, flows_per_tenant: int,
                   bytes_per_flow: int) -> dict:
    untenanted = run_arm(tenants, flows_per_tenant, bytes_per_flow, False)
    tenanted = run_arm(tenants, flows_per_tenant, bytes_per_flow, True)
    overhead = (
        tenanted["wall_seconds"] / untenanted["wall_seconds"]
        if untenanted["wall_seconds"]
        else float("inf")
    )
    return {
        "tenants": tenants,
        "flows_per_tenant": flows_per_tenant,
        "bytes_per_flow": bytes_per_flow,
        "untenanted": untenanted,
        "tenanted": tenanted,
        "wall_overhead": overhead,
    }


def check_comparison(comparison: dict) -> None:
    untenanted, tenanted = comparison["untenanted"], comparison["tenanted"]
    # Enforcement is observability + refusal logic only: with every
    # admission passing, the simulated transfer must be unchanged.
    drift = abs(tenanted["aggregate_mbps"] - untenanted["aggregate_mbps"])
    assert drift <= MAX_SIM_DRIFT * max(untenanted["aggregate_mbps"], 1.0), (
        f"enforcement changed the simulated outcome: "
        f"{tenanted['aggregate_mbps']:.6f} vs "
        f"{untenanted['aggregate_mbps']:.6f} Mb/s"
    )
    # No tenant was refused anything (budgets were provisioned to fit)
    # and nothing leaked through the teardown sweep.
    for profile in tenanted["profiles"]:
        assert profile["rejections"] == 0, profile
    assert tenanted["leaks"] == {}, tenanted["leaks"]


def check_baseline(tenanted: dict) -> str:
    if not BASELINE_PATH.exists():
        return "baseline: none recorded (run --update-baseline)"
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["aggregate_mbps"] / GOODPUT_SLACK
    assert tenanted["aggregate_mbps"] >= floor, (
        f"tenanted goodput regression: {tenanted['aggregate_mbps']:.3f} "
        f"Mb/s < floor {floor:.3f} (recorded {baseline['aggregate_mbps']:.3f})"
    )
    fairness_floor = baseline["tenant_fairness"] - FAIRNESS_FLOOR_DELTA
    assert tenanted["tenant_fairness"] >= fairness_floor, (
        f"tenant fairness regression: {tenanted['tenant_fairness']:.3f} < "
        f"floor {fairness_floor:.3f}"
    )
    return (
        f"baseline: {tenanted['aggregate_mbps']:.3f} Mb/s vs recorded "
        f"{baseline['aggregate_mbps']:.3f} (floor {floor:.3f}), "
        f"fairness {tenanted['tenant_fairness']:.3f} ok"
    )


def _print_arm(label: str, arm: dict) -> None:
    per_tenant = "  ".join(f"{g:.2f}" for g in arm["per_tenant_mbps"])
    print(
        f"{label:11s} aggregate {arm['aggregate_mbps']:6.2f} Mb/s  "
        f"tenant-fairness {arm['tenant_fairness']:.3f}  "
        f"per-tenant [{per_tenant}]  wall {arm['wall_seconds']:.2f}s"
    )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_tenancy_overhead_and_fairness(benchmark, report):
    comparison = benchmark.pedantic(
        run_comparison,
        args=(QUICK_TENANTS, FLOWS_PER_TENANT, QUICK_BYTES),
        rounds=1,
        iterations=1,
    )
    check_comparison(comparison)
    report(
        "Multi-tenant fabric",
        "tenant Jain fairness",
        comparison["tenanted"]["tenant_fairness"],
        0.9,
        "",
    )
    report(
        "Multi-tenant fabric",
        "simulated goodput drift under enforcement",
        abs(
            comparison["tenanted"]["aggregate_mbps"]
            - comparison["untenanted"]["aggregate_mbps"]
        ),
        0.0,
        "Mb/s",
    )


# ----------------------------------------------------------------------
# Standalone / CI entry point
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="N tenants x M flows through the dumbbell: goodput, "
        "fairness, enforcement overhead"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: fewer tenants, shorter flows, baseline guard",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the quick tenanted arm as the new baseline",
    )
    args = parser.parse_args(argv)

    quick = args.quick or args.update_baseline
    tenants = QUICK_TENANTS if quick else N_TENANTS
    bytes_per_flow = QUICK_BYTES if quick else FULL_BYTES
    comparison = run_comparison(tenants, FLOWS_PER_TENANT, bytes_per_flow)

    print(
        f"workload: dumbbell, {tenants} tenants x {FLOWS_PER_TENANT} flows, "
        f"{bytes_per_flow} bytes/flow"
    )
    _print_arm("untenanted", comparison["untenanted"])
    _print_arm("tenanted", comparison["tenanted"])
    print(
        f"enforcement wall overhead {comparison['wall_overhead']:.2f}x  "
        f"(simulated outcome identical by construction check)"
    )
    check_comparison(comparison)

    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "tenants": tenants,
                    "flows_per_tenant": FLOWS_PER_TENANT,
                    "bytes_per_flow": bytes_per_flow,
                    "aggregate_mbps": comparison["tenanted"]["aggregate_mbps"],
                    "tenant_fairness": comparison["tenanted"][
                        "tenant_fairness"
                    ],
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline recorded to {BASELINE_PATH}")
    elif args.quick:
        print(check_baseline(comparison["tenanted"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
