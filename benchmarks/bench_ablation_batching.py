"""Ablation: notification batching.

Paper §3.3: "Our implementation attempts, where possible, to batch
multiple network packets per semaphore notification in order to
amortize the cost of signaling" — and §4 credits batching for keeping
the user-level signalling cost insignificant on AN1.

With batching off, every packet pays a full signal + wakeup + thread
dispatch; throughput must drop on both networks.
"""

from repro.metrics import measure_throughput
from repro.testbed import Testbed


def run_batching_ablation() -> dict:
    out = {}
    for network in ("ethernet", "an1"):
        for batching in (True, False):
            testbed = Testbed(
                network=network, organization="userlib", batching=batching
            )
            result = measure_throughput(
                testbed, total_bytes=400_000, chunk_size=4096
            )
            out[(network, batching)] = result.throughput_mbps
    return out


def test_ablation_batching(benchmark, report):
    r = benchmark.pedantic(run_batching_ablation, rounds=1, iterations=1)
    for network in ("ethernet", "an1"):
        report(
            "Ablation: notification batching",
            f"{network} batching ON vs OFF",
            r[(network, True)],
            r[(network, False)],
            "Mb/s",
        )
        # Batching must help (or at worst be neutral).
        assert r[(network, True)] >= r[(network, False)]
    # The AN1's faster wire makes batches bigger, so losing batching
    # hurts there at least as much as on Ethernet, relatively.
    an1_gain = r[("an1", True)] / r[("an1", False)]
    assert an1_gain >= 1.03
