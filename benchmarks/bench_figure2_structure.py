"""Figure 2: structure of the protocol implementation, verified.

The paper's Figure 2 shows the three components — application+library,
registry server, network I/O module — and the property that matters:
"the server is bypassed in the common path of data transmission and
reception".  This bench runs a transfer and proves the structural
claims with counters.
"""

from repro.metrics import measure_throughput
from repro.testbed import IP_B, Testbed


def run_structured_transfer() -> dict:
    testbed = Testbed(network="ethernet", organization="userlib")
    marks = {}

    def server():
        listener = yield from testbed.service_b.listen(4400)
        conn = yield from listener.accept()
        data = yield from conn.recv_exactly(200_000)
        marks["received"] = len(data)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 4400)
        # Snapshot after setup, before data.
        marks["setup_registry_segments"] = testbed.registry_a.stats[
            "handshake_segments"
        ]
        marks["setup_ipc"] = testbed.host_a.kernel.counters.get(
            "ipc_messages", 0
        )
        yield from conn.send(b"d" * 200_000)
        yield testbed.sim.timeout(0.5)
        marks["post_registry_segments"] = testbed.registry_a.stats[
            "handshake_segments"
        ]
        marks["post_ipc"] = testbed.host_a.kernel.counters.get(
            "ipc_messages", 0
        )
        marks["channel_tx"] = testbed.host_a.netio.stats["tx"]
        marks["demuxed_b"] = testbed.host_b.netio.stats["rx_demuxed"]
        marks["to_kernel_b"] = testbed.host_b.netio.stats["rx_to_kernel"]

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    return marks


def test_figure2_structure(benchmark):
    marks = benchmark.pedantic(run_structured_transfer, rounds=1, iterations=1)
    assert marks["received"] == 200_000

    # The registry is bypassed on the data path: zero involvement
    # during 200 KB of transfer.
    assert marks["post_registry_segments"] == marks["setup_registry_segments"]
    assert marks["post_ipc"] == marks["setup_ipc"]

    # But setup *did* route through the registry (the trusted path).
    assert marks["setup_registry_segments"] >= 2  # SYN out, SYN|ACK in.
    assert marks["setup_ipc"] >= 2  # connect RPC there and back.

    # Data flows through the protected channels: app->module->wire on
    # send; wire->channel via the demultiplexer on receive, with only
    # the handshake ever touching the kernel path.
    assert marks["channel_tx"] > 100  # ~137 segments for 200 KB.
    assert marks["demuxed_b"] > 100
    assert marks["to_kernel_b"] <= 4
