"""Zero-copy datapath: bytes copied per delivered segment, before/after.

The paper's buffer organization "eliminates byte copying"; this bench
quantifies that claim for the simulator's own datapath.  The same
Table 2 bulk-transfer workload runs twice through identical code:

``eager``
    every encapsulation concatenates and every decapsulation slices —
    the legacy copy-per-layer behaviour;

``chain``
    headers are prepended as scatter-gather fragments, payloads travel
    as views, and octets are fused exactly once at the wire.

Reported: bytes copied per delivered segment in each arm, the reduction
ratio (acceptance: >= 2x), template-encoder hit rate, and the wall-clock
ratio of the two arms.  ``--quick`` is the CI smoke; it also checks the
chain arm against ``baselines/zero_copy_quick.json`` so a copy
regression (a reintroduced per-layer copy) fails the build.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.metrics import measure_throughput, packet_cost_profile
from repro.net import buf
from repro.protocols.tcp.wire import TcpSegmentEncoder
from repro.testbed import Testbed

#: The Table 2 workload the arms run (ethernet / user-level library).
NETWORK = "ethernet"
ORGANIZATION = "userlib"
CHUNK_SIZE = 4096
FULL_BYTES = 500_000
QUICK_BYTES = 150_000

#: Acceptance: the chain arm must copy at least this factor fewer
#: bytes per delivered segment than the eager arm.
MIN_REDUCTION = 2.0

BASELINE_PATH = Path(__file__).parent / "baselines" / "zero_copy_quick.json"
#: A regression guard, not a tight bound: the chain arm may not copy
#: more than this factor over the recorded bytes/segment.
BASELINE_SLACK = 1.25


def run_arm(mode: str, total_bytes: int) -> dict:
    """One workload pass in ``mode``; returns the copy/throughput facts."""
    buf.set_mode(mode)
    buf.reset_stats()
    TcpSegmentEncoder.reset_global_stats()
    try:
        testbed = Testbed(network=NETWORK, organization=ORGANIZATION)
        wall0 = time.perf_counter()
        result = measure_throughput(
            testbed, total_bytes=total_bytes, chunk_size=CHUNK_SIZE
        )
        wall = time.perf_counter() - wall0
        profile = packet_cost_profile([testbed.host_a, testbed.host_b])
    finally:
        buf.set_mode("chain")
    return {
        "mode": mode,
        "throughput_mbps": result.throughput_mbps,
        "wall_seconds": wall,
        "segments": profile.segments_delivered,
        "copied_bytes": profile.copied_bytes,
        "materialized_bytes": profile.materialized_bytes,
        "total_copied": profile.total_copied,
        "avoided_bytes": profile.avoided_bytes,
        "copied_per_segment": profile.copied_per_segment,
        "template_hit_rate": profile.template_hit_rate,
        "payload_views": profile.payload_views,
    }


def run_comparison(total_bytes: int) -> dict:
    eager = run_arm("eager", total_bytes)
    chain = run_arm("chain", total_bytes)
    ratio = (
        eager["copied_per_segment"] / chain["copied_per_segment"]
        if chain["copied_per_segment"]
        else float("inf")
    )
    return {"eager": eager, "chain": chain, "reduction_ratio": ratio}


def check_comparison(comparison: dict) -> None:
    eager, chain = comparison["eager"], comparison["chain"]
    # Identical simulated workload: the CostModel charges don't depend
    # on the Python-level copy behaviour, so simulated throughput and
    # segment counts must agree exactly between arms.
    assert chain["segments"] == eager["segments"], (
        f"arms delivered different segment counts: "
        f"{chain['segments']} vs {eager['segments']}"
    )
    assert abs(chain["throughput_mbps"] - eager["throughput_mbps"]) < 1e-9
    assert comparison["reduction_ratio"] >= MIN_REDUCTION, (
        f"bytes-copied/segment reduction {comparison['reduction_ratio']:.2f}x "
        f"< required {MIN_REDUCTION}x"
    )
    # The fast path actually engages on a bulk transfer.
    assert chain["template_hit_rate"] > 0.0
    assert chain["payload_views"] > 0


def check_baseline(chain: dict) -> str:
    """Compare the chain arm against the recorded quick baseline."""
    if not BASELINE_PATH.exists():
        return "baseline: none recorded (run --update-baseline)"
    baseline = json.loads(BASELINE_PATH.read_text())
    recorded = baseline["copied_per_segment_chain"]
    limit = recorded * BASELINE_SLACK
    assert chain["copied_per_segment"] <= limit, (
        f"copy regression: chain arm copies "
        f"{chain['copied_per_segment']:.0f} B/segment, baseline "
        f"{recorded:.0f} (limit {limit:.0f})"
    )
    return (
        f"baseline: {chain['copied_per_segment']:.0f} B/segment vs "
        f"recorded {recorded:.0f} (limit {limit:.0f}) ok"
    )


def _print_arm(label: str, arm: dict) -> None:
    print(
        f"{label:6s} copied/segment {arm['copied_per_segment']:8.1f} B  "
        f"(copies {arm['copied_bytes']:>9d} + fusion "
        f"{arm['materialized_bytes']:>9d} over {arm['segments']} segments)  "
        f"wall {arm['wall_seconds']:.2f}s"
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------

def test_zero_copy_reduction(benchmark, report):
    comparison = benchmark.pedantic(
        run_comparison, args=(QUICK_BYTES,), rounds=1, iterations=1
    )
    check_comparison(comparison)
    report(
        "Zero-copy datapath",
        "bytes-copied/segment reduction",
        comparison["reduction_ratio"],
        MIN_REDUCTION,
        "x",
    )
    report(
        "Zero-copy datapath",
        "template encoder hit rate",
        comparison["chain"]["template_hit_rate"],
        1.0,
        "",
    )


def test_zero_copy_modes_agree_on_simulated_time():
    """The mode switch is observability-only: same simulated outcome."""
    comparison = run_comparison(QUICK_BYTES)
    assert (
        comparison["chain"]["throughput_mbps"]
        == pytest.approx(comparison["eager"]["throughput_mbps"])
    )


# ----------------------------------------------------------------------
# Standalone / CI entry point
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="bytes copied per segment: eager vs chain datapath"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: short transfer + baseline regression guard",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the quick chain arm as the new baseline",
    )
    args = parser.parse_args(argv)

    total_bytes = QUICK_BYTES if args.quick or args.update_baseline else FULL_BYTES
    comparison = run_comparison(total_bytes)
    eager, chain = comparison["eager"], comparison["chain"]

    print(
        f"workload: {NETWORK}/{ORGANIZATION}, {total_bytes} bytes in "
        f"{CHUNK_SIZE}-byte chunks"
    )
    _print_arm("eager", eager)
    _print_arm("chain", chain)
    wall_ratio = (
        eager["wall_seconds"] / chain["wall_seconds"]
        if chain["wall_seconds"]
        else float("inf")
    )
    print(
        f"reduction {comparison['reduction_ratio']:.2f}x "
        f"(acceptance >= {MIN_REDUCTION}x)  "
        f"template hits {chain['template_hit_rate']:.0%}  "
        f"wall-clock {wall_ratio:.2f}x"
    )
    check_comparison(comparison)

    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "workload": f"{NETWORK}/{ORGANIZATION}",
                    "total_bytes": total_bytes,
                    "chunk_size": CHUNK_SIZE,
                    "copied_per_segment_chain": chain["copied_per_segment"],
                    "copied_per_segment_eager": eager["copied_per_segment"],
                    "reduction_ratio": comparison["reduction_ratio"],
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
    elif args.quick:
        print(check_baseline(chain))
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
