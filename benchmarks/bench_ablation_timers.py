"""Ablation: timer facility implementations.

Paper §2.1: "practically every message arrival and departure involves
timer operations.  Once again, fast implementations of timer events are
well known, e.g., using hierarchical timing wheels."

We benchmark the heap baseline against the hashed and hierarchical
wheels on a TCP-like workload — many short-lived timers that are
usually cancelled before firing (retransmission timers on a healthy
connection) — in both wall-clock time and abstract basic operations.
"""

import pytest

from repro.timers import HashedWheel, HeapTimers, HierarchicalWheel

FACTORIES = {
    "heap": HeapTimers,
    "hashed-wheel": lambda: HashedWheel(tick=0.01, slots=256),
    "hierarchical": lambda: HierarchicalWheel(tick=0.01, slots=32, levels=3),
}


def tcp_like_workload(factory, connections: int = 50, rounds: int = 200):
    """Each round arms a retransmission timer per connection, cancels
    most of them (the ACK arrived), lets a few fire, plus a spread of
    long-lived keepalive-style timers."""
    timers = factory()
    fired = []
    # Long-lived timers sprinkled over the horizon.
    for i in range(connections):
        timers.schedule(0.01 + (i % 20) * 0.15, lambda: fired.append("keep"))
    now = 0.0
    handles = []
    for round_index in range(rounds):
        now += 0.005
        for handle in handles:
            if round_index % 10:  # 90% of timers are cancelled (ACKed).
                handle.cancel()
        handles = [
            timers.schedule(0.5, lambda: fired.append("rexmt"))
            for _ in range(connections)
        ]
        timers.advance_to(now)
    timers.advance_to(now + 2.0)
    return timers.ops, len(fired)


@pytest.mark.parametrize("name", list(FACTORIES))
def test_ablation_timer_facility(benchmark, report, name):
    ops, fired = benchmark.pedantic(
        tcp_like_workload, args=(FACTORIES[name],), rounds=3, iterations=1
    )
    heap_ops, heap_fired = tcp_like_workload(FACTORIES["heap"])
    report(
        "Ablation: timer facility (basic ops)",
        f"{name} vs heap baseline",
        float(ops),
        float(heap_ops),
        "ops",
    )
    # All facilities fire the same timers.
    assert fired == heap_fired
    if name != "heap":
        # Wheels do O(1) starts/cancels: fewer basic operations than the
        # heap's O(log n) sift per operation on this workload.
        assert ops < heap_ops
