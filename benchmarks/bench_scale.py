"""Simulator-at-scale: events/sec across fat-tree sizes, batched vs legacy.

The ROADMAP's scale goal is "hundreds of hosts in one simulated world";
this bench grades the engine on it, in two parts:

**Timer storm** — W synchronized self-rescheduling timers with trivial
callbacks.  All W fire at each tick, so every tick is one bucket: this
saturates the *scheduler* and isolates the engine from protocol code.
The batched engine's >= 1.5x events/sec acceptance gate lives here,
measured against :class:`~repro.sim.LegacySimulator` (the original
one-heap-entry-per-event engine, kept verbatim for this comparison).

**Fat-tree sweep** — a k-ary fat-tree (:func:`repro.net.fabric.fat_tree`)
carrying a synchronized many-flow UDP workload: every host runs several
periodic senders whose wake times stay phase-aligned (absolute-time
pacing), the pattern that fills same-timestamp buckets in real protocol
runs.  Reported per size: events/sec, wall-clock per simulated second,
and mean batch size.  The end-to-end batched/legacy ratio is reported
too but only sanity-gated (~1x): protocol callbacks dominate wall time
there, so heap savings are a minor term — which is exactly why the
engine gate uses the storm.

**TCP bulk fast path** — an in-order bulk transfer on the two-host
Ethernet bed, graded on the header-prediction hit rate (the receive
fast path must absorb >= 90% of segments in the no-loss, in-order
steady state; see :class:`repro.protocols.tcp.machine.TcpMachine`).

``--quick`` is the CI smoke: storm gate + 16-host tree + TCP fast-path
gate, plus a regression guard against ``baselines/scale_quick.json``
(fail on a >20% events/sec drop in storm or fabric).  The full sweep
runs 16/64/256 hosts (the 256-host tree carries >= 1k concurrent
flows); ``--huge`` adds the 1024-host k=16 tree and the 4096-host
k=16 tree.  Topology build time is reported separately from the run:
the events/sec figures time :meth:`Simulator.run` only.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.metrics import engine_profile
from repro.net.fabric import fat_tree
from repro.net.headers import PROTO_UDP
from repro.protocols.udp import encode_datagram
from repro.sim import LegacySimulator, Simulator, Timeout

FLOW_PORT = 9000
PAYLOAD = bytes(64)
#: Send period.  Short enough that flows overlap heavily; senders hold
#: phase against CPU-cost drift, so each tick is one engine batch.
INTERVAL = 2e-3

#: Timer storm shape: ``STORM_WIDTH`` timers x ``STORM_TICKS`` rounds.
STORM_WIDTH = 400
STORM_TICKS = 250
STORM_PERIOD = 1e-3

#: (label, fat-tree k, hosts/edge, flows per host, datagrams per flow).
#: Host count is k * (k/2) * hosts_per_edge.
QUICK_CONFIG = ("16", 4, 2, 2, 12)
FULL_SWEEP = [
    ("16", 4, 2, 2, 12),
    ("64", 4, 8, 2, 12),
    ("256", 8, 8, 4, 6),  # 1024 concurrent flows.
]
HUGE_SWEEP = [
    ("1024", 16, 8, 2, 4),
    ("4096", 16, 32, 1, 2),  # k=16, 32 hosts/edge: 4096 hosts.
]

#: Acceptance: batched engine events/sec over legacy on the timer storm.
MIN_SPEEDUP = 1.5
#: Sanity floor for the end-to-end fabric ratio: the batched engine must
#: not make real protocol workloads meaningfully *slower*.
MIN_FABRIC_RATIO = 0.85
#: The 256-host tree must carry at least this many concurrent flows.
MIN_FLOWS_AT_256 = 1000
#: Header-prediction floor: fraction of received segments the TCP
#: receive fast path must absorb on an in-order bulk transfer.
MIN_FASTPATH_HIT = 0.9

BASELINE_PATH = Path(__file__).parent / "baselines" / "scale_quick.json"
#: Regression guard: fail if batched events/sec drops more than 20%
#: below the recorded baseline.
BASELINE_DROP = 0.8


# ----------------------------------------------------------------------
# Part 1: scheduler-saturating timer storm
# ----------------------------------------------------------------------

def run_storm(sim_cls, width=STORM_WIDTH, ticks=STORM_TICKS) -> dict:
    """``width`` synchronized timers, each rescheduling for ``ticks``
    rounds.  Absolute-time pacing keeps every round on one timestamp.

    ``events_per_sec`` here is events per *CPU* second
    (``time.process_time``): the storm arms run ~0.2s each, short
    enough that wall-clock preemption noise on a shared machine swings
    a measurement 30%, and the gate is about engine work, not
    scheduling luck."""
    sim = sim_cls()

    def retick(timer: Timeout) -> None:
        tick = timer._value
        if tick < ticks:
            nxt = Timeout(
                sim, (tick + 1) * STORM_PERIOD - sim.now, value=tick + 1
            )
            nxt.callbacks.append(retick)

    for _ in range(width):
        first = Timeout(sim, STORM_PERIOD, value=1)
        first.callbacks.append(retick)

    cpu0 = time.process_time()
    sim.run()
    cpu = time.process_time() - cpu0
    profile = engine_profile(sim, sim_cls.__name__, cpu, sim.now)
    return {
        "engine": sim_cls.__name__,
        "events": profile.events,
        "steps": profile.steps,
        "events_per_step": profile.events_per_step,
        "events_per_sec": profile.events_per_sec,
        "cpu_seconds": cpu,
    }


def run_storm_comparison(reps: int = 3) -> dict:
    """Best-of-``reps`` per arm, interleaved.  The storm runs ~0.2s per
    arm, short enough that one scheduler hiccup on a shared machine can
    swing a single measurement 30%; best-of keeps the gate meaningful."""
    legacy = batched = None
    for _ in range(reps):
        lraw = run_storm(LegacySimulator)
        braw = run_storm(Simulator)
        assert lraw["events"] == braw["events"]
        if legacy is None or lraw["events_per_sec"] > legacy["events_per_sec"]:
            legacy = lraw
        if batched is None or braw["events_per_sec"] > batched["events_per_sec"]:
            batched = braw
    return {
        "legacy": legacy,
        "batched": batched,
        "speedup": (
            batched["events_per_sec"] / legacy["events_per_sec"]
            if legacy["events_per_sec"]
            else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# Part 2: fat-tree many-flow sweep
# ----------------------------------------------------------------------

def run_arm(sim_cls, k, hosts_per_edge, flows_per_host, datagrams) -> dict:
    """One fat-tree many-flow workload on one engine; returns the facts.

    Topology construction is timed separately (``build_seconds``): at
    4096 hosts the build is minutes of allocation while the run is
    seconds, and folding it into events/sec would grade the allocator,
    not the engine."""
    sim = sim_cls()
    build0 = time.perf_counter()
    topo = fat_tree(sim, k=k, hosts_per_edge=hosts_per_edge)
    hosts = topo.hosts
    n = len(hosts)
    received = [0]

    def on_datagram(_dg):
        received[0] += 1

    for host in hosts:
        host.udp_ports.bind(FLOW_PORT, on_datagram)

    def sender(src, dst_ip, sport):
        # Absolute-time pacing: tick f of every flow lands at the same
        # timestamp no matter how much simulated CPU the sends burned.
        start = sim.now
        for seq in range(datagrams):
            at = start + seq * INTERVAL
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            datagram = encode_datagram(
                sport, FLOW_PORT, PAYLOAD, src.ip, dst_ip
            )
            yield from src.ip_send(dst_ip, PROTO_UDP, datagram)

    # Deterministic flow pattern: flow f of host i targets the host
    # n//2 + f*hosts_per_edge slots away — off-subnet, spread over
    # pods, identical in both arms.
    flows = 0
    for i, src in enumerate(hosts):
        for f in range(flows_per_host):
            j = (i + n // 2 + f * hosts_per_edge) % n
            if j == i:
                j = (j + 1) % n
            sim.process(
                sender(src, hosts[j].ip, FLOW_PORT + 1 + f),
                name=f"flow-{i}-{f}",
            )
            flows += 1

    build_seconds = time.perf_counter() - build0
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    sim.run()
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    # events/sec over CPU time (stable under machine contention, and
    # what the baseline guards); wall-clock feeds the wall-s/sim-s
    # figure the sweep table reports.
    profile = engine_profile(sim, sim_cls.__name__, cpu, sim.now)
    sent = flows * datagrams
    return {
        "engine": sim_cls.__name__,
        "hosts": n,
        "flows": flows,
        "datagrams_sent": sent,
        "datagrams_received": received[0],
        "delivery_rate": received[0] / sent if sent else 0.0,
        "events": profile.events,
        "steps": profile.steps,
        "events_per_step": profile.events_per_step,
        "max_batch": profile.max_batch,
        "skipped": profile.skipped,
        "sim_seconds": sim.now,
        "build_seconds": build_seconds,
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "events_per_sec": profile.events_per_sec,
        "wall_per_sim_second": wall / sim.now if sim.now else 0.0,
    }


def run_size(config, compare: bool) -> dict:
    """One sweep point; with ``compare``, the legacy arm runs too."""
    label, k, hpe, fph, dgrams = config
    batched = run_arm(Simulator, k, hpe, fph, dgrams)
    result = {"label": label, "batched": batched}
    if compare:
        legacy = run_arm(LegacySimulator, k, hpe, fph, dgrams)
        result["legacy"] = legacy
        # Same workload, same simulated outcome: the engines must agree
        # on what happened, or the ratio is comparing different runs.
        assert legacy["datagrams_received"] == batched["datagrams_received"]
        assert abs(legacy["sim_seconds"] - batched["sim_seconds"]) < 1e-9
        assert legacy["events"] == batched["events"], (
            f"engines processed different event counts: "
            f"{legacy['events']} vs {batched['events']}"
        )
        result["fabric_ratio"] = (
            batched["events_per_sec"] / legacy["events_per_sec"]
            if legacy["events_per_sec"]
            else float("inf")
        )
    return result


# ----------------------------------------------------------------------
# Part 3: TCP bulk transfer, graded on the header-prediction fast path
# ----------------------------------------------------------------------

def run_tcp_bulk(total_bytes=192 * 1024, chunk=4096, port=4500) -> dict:
    """One-way TCP bulk transfer on the two-host Ethernet bed.

    A faultless, in-order stream is header prediction's home turf: the
    receive path should classify nearly every segment (bulk data at the
    receiver, pure ACKs back at the sender) on the fast path.  Returns
    the combined hit rate across both endpoint machines.
    """
    from repro.testbed import IP_B, Testbed

    bed = Testbed(organization="ultrix")
    payload = (bytes(range(256)) * (chunk // 256 + 1))[:chunk]
    machines = []

    def sender():
        conn = yield from bed.service_a.connect(IP_B, port)
        machines.append(conn.runner.machine)
        sent = 0
        while sent < total_bytes:
            data = payload[: min(chunk, total_bytes - sent)]
            yield from conn.send(data)
            sent += len(data)
        yield from conn.close()

    def receiver():
        listener = yield from bed.service_b.listen(port)
        conn = yield from listener.accept()
        machines.append(conn.runner.machine)
        received = 0
        while received < total_bytes:
            data = yield from conn.recv(chunk)
            if not data:
                break
            received += len(data)
        yield from conn.close()

    rx = bed.spawn(receiver(), name="bulk-rx")
    bed.spawn(sender(), name="bulk-tx")
    cpu0 = time.process_time()
    bed.run(until=rx)
    cpu = time.process_time() - cpu0
    hits = misses = 0
    for machine in machines:
        stats = machine.stats
        hits += stats["fastpath_ack_hits"] + stats["fastpath_data_hits"]
        misses += stats["fastpath_misses"]
    segments = hits + misses
    return {
        "bytes": total_bytes,
        "segments": segments,
        "fastpath_hits": hits,
        "fastpath_misses": misses,
        "fastpath_hit_rate": hits / segments if segments else 0.0,
        "sim_seconds": bed.sim.now,
        "cpu_seconds": cpu,
    }


# ----------------------------------------------------------------------
# Acceptance and baseline checks
# ----------------------------------------------------------------------

def check_quick(storm: dict, fabric: dict, tcp: dict) -> None:
    assert storm["speedup"] >= MIN_SPEEDUP, (
        f"batched engine {storm['speedup']:.2f}x legacy events/sec on the "
        f"timer storm, acceptance >= {MIN_SPEEDUP}x"
    )
    batched = fabric["batched"]
    assert batched["delivery_rate"] > 0.95, (
        f"workload broken: only {batched['delivery_rate']:.0%} of "
        f"datagrams delivered"
    )
    assert batched["events_per_step"] > 1.5, (
        f"batching never engaged on the fabric: "
        f"{batched['events_per_step']:.2f} events/step"
    )
    assert fabric["fabric_ratio"] >= MIN_FABRIC_RATIO, (
        f"batched engine slows real workloads: fabric ratio "
        f"{fabric['fabric_ratio']:.2f}x < {MIN_FABRIC_RATIO}x"
    )
    assert tcp["fastpath_hit_rate"] >= MIN_FASTPATH_HIT, (
        f"header prediction missed the in-order bulk workload: hit rate "
        f"{tcp['fastpath_hit_rate']:.3f} < {MIN_FASTPATH_HIT} "
        f"({tcp['fastpath_hits']}/{tcp['segments']} segments)"
    )


def check_baseline(storm: dict, fabric_batched: dict) -> str:
    """Guard batched events/sec (both parts) against the baseline."""
    if not BASELINE_PATH.exists():
        return "baseline: none recorded (run --update-baseline)"
    baseline = json.loads(BASELINE_PATH.read_text())
    notes = []
    for key, current in (
        ("storm_events_per_sec_batched", storm["batched"]["events_per_sec"]),
        ("fabric_events_per_sec_batched", fabric_batched["events_per_sec"]),
    ):
        recorded = baseline[key]
        floor = recorded * BASELINE_DROP
        assert current >= floor, (
            f"events/sec regression ({key}): {current:,.0f} is >20% "
            f"below baseline {recorded:,.0f} (floor {floor:,.0f})"
        )
        notes.append(f"{key} {current:,.0f} vs {recorded:,.0f} ok")
    return "baseline: " + "; ".join(notes)


def _print_tcp(tcp: dict) -> None:
    print(
        f"tcp bulk ({tcp['bytes'] // 1024} KB)  "
        f"{tcp['segments']:>6d} segments  "
        f"fast path {tcp['fastpath_hits']}/{tcp['segments']} "
        f"({tcp['fastpath_hit_rate']:.1%}, floor {MIN_FASTPATH_HIT:.0%})"
    )


def _print_storm(storm: dict) -> None:
    legacy, batched = storm["legacy"], storm["batched"]
    print(
        f"storm ({STORM_WIDTH}x{STORM_TICKS} timers)  "
        f"legacy {legacy['events_per_sec']:>10,.0f} ev/s  "
        f"batched {batched['events_per_sec']:>10,.0f} ev/s  "
        f"speedup {storm['speedup']:.2f}x  "
        f"(batch avg {batched['events_per_step']:.0f})"
    )


def _print_size(result: dict) -> None:
    batched = result["batched"]
    print(
        f"{result['label']:>5s} hosts  {batched['flows']:>4d} flows  "
        f"{batched['events']:>10,d} events  "
        f"{batched['events_per_sec']:>10,.0f} ev/s  "
        f"{batched['wall_per_sim_second']:>7.2f} wall-s/sim-s  "
        f"build {batched['build_seconds']:>6.1f}s  "
        f"batch avg {batched['events_per_step']:.1f} "
        f"max {batched['max_batch']}"
    )
    if "legacy" in result:
        legacy = result["legacy"]
        print(
            f"{'':>5s} legacy  {'':>10s} "
            f"{legacy['events']:>10,d} events  "
            f"{legacy['events_per_sec']:>10,.0f} ev/s  "
            f"end-to-end ratio {result['fabric_ratio']:.2f}x"
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------

def test_scale_quick_speedup(benchmark, report):
    def both():
        return (
            run_storm_comparison(),
            run_size(QUICK_CONFIG, compare=True),
            run_tcp_bulk(),
        )

    storm, fabric, tcp = benchmark.pedantic(both, rounds=1, iterations=1)
    check_quick(storm, fabric, tcp)
    report(
        "Simulator at scale",
        "batched/legacy events-per-sec (timer storm)",
        storm["speedup"],
        MIN_SPEEDUP,
        "x",
    )
    report(
        "Simulator at scale",
        "events per heap pop (quick fat-tree)",
        fabric["batched"]["events_per_step"],
        1.5,
        "",
    )
    report(
        "Simulator at scale",
        "TCP header-prediction hit rate (in-order bulk)",
        tcp["fastpath_hit_rate"],
        MIN_FASTPATH_HIT,
        "",
    )


def test_scale_engines_agree():
    """Engine choice is a performance knob, not a semantics knob."""
    result = run_size(QUICK_CONFIG, compare=True)
    assert result["legacy"]["datagrams_received"] == (
        result["batched"]["datagrams_received"]
    )
    assert result["legacy"]["sim_seconds"] == (
        result["batched"]["sim_seconds"]
    )


# ----------------------------------------------------------------------
# Standalone / CI entry point
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="events/sec vs fat-tree size, batched vs legacy engine"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: storm gate + 16-host tree + baseline guard",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record quick batched events/sec as the new baseline",
    )
    parser.add_argument(
        "--huge",
        action="store_true",
        help="add the 1024- and 4096-host k=16 trees to the full sweep",
    )
    args = parser.parse_args(argv)

    storm = run_storm_comparison()
    _print_storm(storm)

    if args.quick or args.update_baseline:
        fabric = run_size(QUICK_CONFIG, compare=True)
        _print_size(fabric)
        tcp = run_tcp_bulk()
        _print_tcp(tcp)
        check_quick(storm, fabric, tcp)
        if args.update_baseline:
            batched = fabric["batched"]
            BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
            BASELINE_PATH.write_text(
                json.dumps(
                    {
                        "storm": {
                            "width": STORM_WIDTH,
                            "ticks": STORM_TICKS,
                        },
                        "fabric": {
                            "k": QUICK_CONFIG[1],
                            "hosts_per_edge": QUICK_CONFIG[2],
                            "flows_per_host": QUICK_CONFIG[3],
                            "datagrams_per_flow": QUICK_CONFIG[4],
                        },
                        "storm_events_per_sec_batched": (
                            storm["batched"]["events_per_sec"]
                        ),
                        "storm_speedup": storm["speedup"],
                        "fabric_events_per_sec_batched": (
                            batched["events_per_sec"]
                        ),
                        "fabric_ratio": fabric["fabric_ratio"],
                        "fabric_events": batched["events"],
                        "fabric_events_per_step": (
                            batched["events_per_step"]
                        ),
                        "tcp_fastpath_hit_rate": tcp["fastpath_hit_rate"],
                        "tcp_fastpath_segments": tcp["segments"],
                    },
                    indent=2,
                )
                + "\n"
            )
            print(f"baseline written to {BASELINE_PATH}")
        else:
            print(check_baseline(storm, fabric["batched"]))
        print("ok")
        return 0

    assert storm["speedup"] >= MIN_SPEEDUP
    sweep = list(FULL_SWEEP) + (HUGE_SWEEP if args.huge else [])
    for config in sweep:
        # Legacy comparison on the small sizes only; the big trees are
        # about absolute throughput, not the A/B.
        result = run_size(config, compare=config[1] <= 4)
        _print_size(result)
        if result["label"] == "256":
            assert result["batched"]["flows"] >= MIN_FLOWS_AT_256
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
