"""Table 1: impact of our mechanisms on raw throughput.

Paper §4: "we ran a micro-benchmark that used two applications to
exchange data over the 10 Mb/s Ethernet, without using any higher-level
protocols.  All the standard mechanisms that we provide (including the
library-kernel signaling) are exercised in this experiment" — and the
result is compared against "the maximum achievable using the raw
hardware with a standalone program and no operating system" (link
saturation once frame format and inter-packet gaps are accounted for).

Our version: application A pushes pre-formed maximum-sized packets
through its protected channel (template check, PIO, wire); application B
receives them through the shared region with batched semaphore
notifications.  No TCP machine runs.
"""

from paper_targets import TABLE1_MIN_FRACTION

from repro.net.headers import EthernetHeader, Ipv4Header, PROTO_TCP, TCP_ACK
from repro.net.link import EthernetLink
from repro.netio.channels import ChannelClosed
from repro.protocols.tcp import Segment, encode_segment
from repro.testbed import IP_A, IP_B, MAC_A, MAC_B, Testbed


def build_packet(size: int) -> bytes:
    """A max-sized, template-conformant IP packet (static TCP header)."""
    payload = bytes(range(256)) * (size // 256 + 1)
    seg = Segment(
        sport=5000, dport=6000, seq=1, ack=1, flags=TCP_ACK,
        window=0, payload=payload[: size - 40],
    )
    tcp = encode_segment(seg, IP_A, IP_B)
    header = Ipv4Header(
        src=IP_A, dst=IP_B, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(tcp),
    )
    return header.pack() + tcp


def run_mechanism_benchmark(npackets: int = 300) -> dict:
    """Exchange raw packets a→b through the full mechanism path."""
    from repro.netio.template import tcp_send_template

    testbed = Testbed(network="ethernet", organization="userlib")
    netio_a, netio_b = testbed.host_a.netio, testbed.host_b.netio
    registry_a, registry_b = testbed.registry_a, testbed.registry_b
    packet = build_packet(1500)
    marks = {}

    def setup_and_run():
        chan_a = yield from netio_a.create_channel(
            registry_a.task, testbed.app_a,
            tcp_send_template(IP_A, 5000, IP_B, 6000),
            local_ip=IP_A, local_port=5000,
            remote_ip=IP_B, remote_port=6000, link_dst=MAC_B,
        )
        chan_b = yield from netio_b.create_channel(
            registry_b.task, testbed.app_b,
            tcp_send_template(IP_B, 6000, IP_A, 5000),
            local_ip=IP_B, local_port=6000,
            remote_ip=IP_A, remote_port=5000, link_dst=MAC_A,
        )
        testbed.spawn(receiver(chan_b), name="rx")
        marks["t0"] = testbed.sim.now
        for _ in range(npackets):
            yield from netio_a.send(testbed.app_a, chan_a, packet)

    def receiver(chan_b):
        got = 0
        while got < npackets:
            batch = yield from chan_b.receive_batch()
            got += len(batch)
        marks["t1"] = testbed.sim.now
        marks["received"] = got

    proc = testbed.spawn(setup_and_run(), name="tx")
    testbed.run(until=proc)
    testbed.run(until=testbed.sim.now + 1.0)
    elapsed = marks["t1"] - marks["t0"]
    user_bytes = marks["received"] * 1500
    link = testbed.link
    # Standalone saturation: back-to-back max frames, nothing else.
    frame_wire = link.frame_time(1514) + EthernetLink.IFG
    saturation_mbps = 1500 * 8 / frame_wire / 1e6
    return {
        "throughput_mbps": user_bytes * 8 / elapsed / 1e6,
        "saturation_mbps": saturation_mbps,
        "packets": marks["received"],
    }


def test_table1_mechanism_overhead_is_modest(benchmark, report):
    result = benchmark.pedantic(run_mechanism_benchmark, rounds=1, iterations=1)
    fraction = result["throughput_mbps"] / result["saturation_mbps"]
    report(
        "Table 1", "raw mechanisms (1500B frames, Ethernet)",
        result["throughput_mbps"], result["saturation_mbps"],
        "Mb/s",
    )
    # Paper: "our mechanisms introduce only very modest overhead".
    assert result["packets"] == 300
    assert fraction >= TABLE1_MIN_FRACTION, (
        f"mechanism path reached only {fraction:.0%} of link saturation"
    )


def test_table1_shared_memory_delivery_needs_no_registry(benchmark, report):
    """The mechanism path involves zero registry IPC per packet."""

    def run():
        from repro.testbed import Testbed as TB

        testbed = Testbed(network="ethernet", organization="userlib")
        before = testbed.host_a.kernel.counters.get("ipc_messages", 0)
        result = run_mechanism_benchmark(npackets=50)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["packets"] == 50
