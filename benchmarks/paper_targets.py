"""The paper's published numbers, as data.

Every bench prints its measured values next to these and asserts the
*shape* relations (who wins, by roughly what factor) rather than the
absolute numbers — our substrate is a calibrated simulator, not the
authors' DECstations.
"""

# Table 2: TCP throughput in Mb/s by (network, system, user packet size).
TABLE2_SIZES = (512, 1024, 2048, 4096)
TABLE2 = {
    ("ethernet", "ultrix"): {512: 5.8, 1024: 7.6, 2048: 7.6, 4096: 7.6},
    ("ethernet", "mach-ux"): {512: 2.1, 1024: 2.5, 2048: 3.2, 4096: 3.5},
    ("ethernet", "userlib"): {512: 4.3, 1024: 4.6, 2048: 4.8, 4096: 5.0},
    ("an1", "ultrix"): {512: 4.8, 1024: 10.2, 2048: 11.9, 4096: 11.9},
    ("an1", "userlib"): {512: 6.7, 1024: 8.1, 2048: 9.4, 4096: 11.9},
}

# Table 3: round-trip latency in ms by (network, system, message size).
TABLE3_SIZES = (1, 512, 1460)
TABLE3 = {
    ("ethernet", "ultrix"): {1: 1.6, 512: 3.5, 1460: 6.2},
    ("ethernet", "mach-ux"): {1: 7.8, 512: 10.8, 1460: 16.0},
    ("ethernet", "userlib"): {1: 2.8, 512: 5.2, 1460: 9.9},
    ("an1", "ultrix"): {1: 1.8, 512: 2.7, 1460: 3.2},
    ("an1", "userlib"): {1: 2.7, 512: 3.4, 1460: 4.7},
}

# Table 4: connection setup time in ms by (network, system).
TABLE4 = {
    ("ethernet", "ultrix"): 2.6,
    ("an1", "ultrix"): 2.9,
    ("ethernet", "mach-ux"): 6.8,
    ("ethernet", "userlib"): 11.9,
    ("an1", "userlib"): 12.3,
}

# Table 4 breakdown of the 11.9 ms Ethernet setup (paper §4), in ms.
TABLE4_BREAKDOWN = {
    "remote_and_back": 4.6,
    "non_overlapped_outbound": 1.5,
    "channel_setup": 3.4,
    "app_server_ipc": 0.9,
    "state_transfer": 1.4,
}

# Table 5: per-packet demultiplexing cost in microseconds.
TABLE5 = {
    "ethernet-software": 52.0,
    "an1-hardware-bqi": 50.0,
}

# Table 1's shape: raw-mechanism micro-benchmark reaches a large
# fraction of standalone link saturation with max-sized frames.
TABLE1_MIN_FRACTION = 0.80
