#!/usr/bin/env python3
"""Many user-level TCP stacks sharing one bottleneck.

The paper measured its user-level TCP between two hosts on a private
segment.  Here the same stacks meet real contention: N client/server
pairs on 100 Mb/s edges, joined by a single 10 Mb/s trunk whose finite
egress queue is the only place loss can happen.  Each client streams
concurrently to its server; congestion control at every sender probes
the shared queue, drops cut their windows, and the trunk's bandwidth
gets divided — how evenly is the Jain fairness index.

Run:  python examples/dumbbell_fairness.py [pairs]
"""

import sys

from repro import netstat
from repro.metrics import measure_fabric_transfers
from repro.testbed import FabricTestbed


def main() -> None:
    pairs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    fabric = FabricTestbed(kind="dumbbell", pairs=pairs)
    trunk_mbps = fabric.topology.meta["bottleneck_rate"] / 1e6
    print(
        f"{pairs} flows x 200 KB through a {trunk_mbps:.0f} Mb/s trunk "
        f"({fabric.topology.meta['queue_bytes'] // 1024} KB queue, tail-drop)\n"
    )

    result = measure_fabric_transfers(fabric, bytes_per_flow=200_000)

    for flow in result.flows:
        bar = "#" * round(flow.throughput_mbps * 10)
        print(
            f"  flow {flow.index:2d}  {flow.throughput_mbps:5.2f} Mb/s  {bar}"
        )
    print(
        f"\naggregate {result.aggregate_mbps:.2f} / {trunk_mbps:.0f} Mb/s"
        f"  ({result.aggregate_mbps / trunk_mbps:.0%} of the trunk)"
    )
    print(f"Jain fairness {result.fairness:.3f}")
    print(
        f"drops: {result.bottleneck_drops} at the bottleneck, "
        f"{result.other_drops} anywhere else"
    )

    print("\n--- netstat: switch ports ---")
    for entry in netstat.switch_table(fabric):
        print(entry)


if __name__ == "__main__":
    main()
