#!/usr/bin/env python3
"""Connection hand-off, inetd style (paper §3.2).

"Once a connection is established, it can be passed by the application
to other applications without involving the registry server or the
network I/O module ... A typical instance of this occurs in UNIX-based
systems where the Internet daemon (inetd) hands off connection
end-points to specific servers such as the TELNET or FTP daemons."

One 'inetd' application accepts connections on a well-known port and
hands each established connection to a per-service worker application —
the channel capability moves between tasks with Mach semantics, and the
registry's involvement stays zero.

Run:  python examples/inetd_handoff.py
"""

from repro.testbed import IP_B, Testbed

SERVICES = {
    b"DATE": lambda: b"Tue Sep 14 09:31:07 PDT 1993\n",
    b"ECHO": None,  # Echoes the rest of the stream.
    b"QUOT": lambda: b"protocol implementation is a matter of policy\n",
}


def main() -> None:
    testbed = Testbed(network="ethernet", organization="userlib")
    sim = testbed.sim

    # One worker application (own task + own protocol library) per service.
    workers = {
        name: testbed.library_service("bob", f"worker-{name.decode().lower()}")
        for name in SERVICES
    }

    def inetd():
        listener = yield from testbed.service_b.listen(513)
        print(f"[{sim.now * 1e3:7.2f} ms] inetd: listening on port 513")
        for _ in range(3):
            conn = yield from listener.accept()
            service = yield from conn.recv_exactly(4)
            registry_before = testbed.registry_b.stats["handshake_segments"]
            worker_service = workers[service]
            handed = conn.hand_off(worker_service.app, worker_service)
            assert (
                testbed.registry_b.stats["handshake_segments"]
                == registry_before
            ), "hand-off must not involve the registry"
            print(
                f"[{sim.now * 1e3:7.2f} ms] inetd: handed {service.decode()}"
                f" connection to {worker_service.app.name}"
            )
            testbed.spawn(worker(handed, service), name=f"w-{service}")

    def worker(conn, service):
        generator = SERVICES[service]
        if generator is None:  # ECHO
            data = yield from conn.recv(4096)
            yield from conn.send(data)
        else:
            yield from conn.send(generator())
        yield from conn.close()

    def client(service, payload=b""):
        conn = yield from testbed.service_a.connect(IP_B, 513)
        yield from conn.send(service + payload)
        response = bytearray()
        while True:
            data = yield from conn.recv(4096)
            if not data:
                break
            response.extend(data)
        yield from conn.close()
        print(
            f"[{sim.now * 1e3:7.2f} ms] client: {service.decode()} -> "
            f"{bytes(response)!r}"
        )
        return bytes(response)

    def clients():
        yield from client(b"DATE")
        yield from client(b"QUOT")
        echoed = yield from client(b"ECHO", b" say it back")
        assert echoed == b" say it back"

    testbed.spawn(inetd(), name="inetd")
    done = testbed.spawn(clients(), name="clients")
    testbed.run(until=done)
    print("\nall three services ran in separate worker tasks; the registry")
    print("saw only the three connection handshakes, never the hand-offs.")


if __name__ == "__main__":
    main()
