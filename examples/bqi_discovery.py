#!/usr/bin/env python3
"""Connectionless protocols on AN1: BQI discovery in action (paper §5).

"To fully exploit the benefits of the BQI scheme, indexes have to be
exchanged between the peers.  This is easy if connection setup (as in
TCP) or binding (as in RPC) is performed prior to normal data transfer
... Connectionless protocols can also use this facility by
'discovering' the index value of their peer by examining the
link-level headers of incoming messages."

Watch a user-level UDP endpoint on the 100 Mb/s AN1:

1. the first datagram travels with BQI 0 — protected kernel memory —
   and reaches the peer's channel through the kernel software fallback;
2. every datagram advertises the sender's own ring index in the link
   header's spare field;
3. from the first response onward, both sides stamp the discovered
   index and the controller DMAs datagrams straight into the peer's
   ring: pure hardware demultiplexing, no kernel software on the path.

Run:  python examples/bqi_discovery.py
"""

from repro.org.udplib import LibraryUdpService
from repro.testbed import IP_B, Testbed


def main() -> None:
    testbed = Testbed(network="an1", organization="userlib")
    sim = testbed.sim
    udp_a = LibraryUdpService(testbed.host_a, testbed.app_a, testbed.registry_a)
    udp_b = LibraryUdpService(testbed.host_b, testbed.app_b, testbed.registry_b)

    def via(endpoint, before):
        ring = endpoint.channel.ring
        return "hardware ring" if ring.stats["delivered"] > before else "kernel fallback"

    def server():
        endpoint = yield from udp_b.bind(9999)
        print(f"server bound port 9999; its ring is BQI {endpoint.channel.ring.bqi}")
        while True:
            before = endpoint.channel.ring.stats["delivered"]
            data, (src_ip, src_port) = yield from endpoint.recvfrom()
            print(
                f"[{sim.now * 1e3:7.2f} ms] server: {data!r} arrived via "
                f"{via(endpoint, before)}; knows peer rings {endpoint.peer_bqi}"
            )
            yield from endpoint.sendto(src_ip, src_port, b"ack:" + data)

    def client():
        endpoint = yield from udp_a.bind(0)
        print(f"client bound; its ring is BQI {endpoint.channel.ring.bqi}")
        for i in range(4):
            stamped = endpoint.peer_bqi.get(IP_B, 0)
            print(
                f"[{sim.now * 1e3:7.2f} ms] client: sending request {i} "
                f"stamped with BQI {stamped}"
                + ("  <- undiscovered: kernel path" if not stamped else "")
            )
            yield from endpoint.sendto(IP_B, 9999, f"req-{i}".encode())
            data, _ = yield from endpoint.recvfrom()
            print(f"[{sim.now * 1e3:7.2f} ms] client: got {data!r}")
        return endpoint

    testbed.spawn(server(), name="server")
    done = testbed.spawn(client(), name="client")
    endpoint = testbed.run(until=done)

    print()
    print("ring statistics after the exchange:")
    print(f"  client ring: {endpoint.channel.ring.stats}")
    print("only the very first datagram in each direction needed the kernel;")
    print("every subsequent one was demultiplexed by the AN1 hardware.")


if __name__ == "__main__":
    main()
