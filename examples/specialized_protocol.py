#!/usr/bin/env python3
"""Application-specific protocol specialization (paper §1.1).

"Further performance advantages may be gained by exploiting
application-specific knowledge to fine tune a particular instance of a
protocol ... based on application requirements, a specialized variant
of a standard protocol is used rather than the standard protocol
itself.  A different application would use a slightly different variant
of the same protocol."

With the protocol in a user-level library each application links the
variant tuned for *its* traffic — impossible when one in-kernel stack
serves everyone.  Two demonstrations:

1. **Interactive traffic**: a terminal-style application types bursts of
   characters.  The stock library's Nagle algorithm holds the trailing
   keystrokes for the peer's (delayed) ACK; the interactive variant
   disables Nagle and shortens the delayed-ACK clock.

2. **Bulk transfer over a lossy path**: a file mover that knows its
   route drops ~2% of frames links the Reno variant (fast recovery);
   the conservative Tahoe variant collapses to one segment on every
   fast retransmit.  In 1993 you got whichever your kernel shipped.

Run:  python examples/specialized_protocol.py
"""

from repro.net.faults import FaultInjector
from repro.metrics import measure_throughput
from repro.protocols.tcp import TcpConfig
from repro.testbed import IP_B, Testbed

INTERACTIVE = TcpConfig(nagle=False, delack_time=0.05)
STOCK = TcpConfig()
RENO_BULK = TcpConfig(flavor="reno", min_rto=0.3, initial_rto=0.6)
TAHOE_BULK = TcpConfig(flavor="tahoe", min_rto=0.3, initial_rto=0.6)


def measure_keystroke_bursts(config: TcpConfig, bursts: int = 10) -> float:
    """Mean time for a burst of three typed-ahead keystrokes to echo.

    Three separate one-byte writes while the first is still in flight;
    the server echoes once it has all three.  With Nagle on, the
    trailing characters wait for the first one's (delayed) ACK — the
    classic interactive stall the specialized variant removes.
    """
    testbed = Testbed(network="ethernet", organization="userlib", config=config)
    sim = testbed.sim
    out = {}

    def server():
        listener = yield from testbed.service_b.listen(23)
        conn = yield from listener.accept()
        for _ in range(bursts):
            burst = yield from conn.recv_exactly(3)
            yield from conn.send(burst)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 23)
        start = sim.now
        for _ in range(bursts):
            for _ in range(3):  # Typed ahead, not waiting for echoes.
                yield from conn.send(b"k")
            yield from conn.recv_exactly(3)
        out["mean"] = (sim.now - start) / bursts

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    return out["mean"]


def measure_lossy_bulk(config: TcpConfig, total: int = 500_000) -> float:
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        faults=FaultInjector(drop_rate=0.02, seed=5),
        config=config,
    )
    return measure_throughput(
        testbed, total_bytes=total, chunk_size=4096
    ).throughput_mbps


def main() -> None:
    print("one user-level TCP library, per-application variants\n")

    print("1. interactive traffic (bursts of 3 typed-ahead keystrokes):")
    stock_echo = measure_keystroke_bursts(STOCK) * 1e3
    fast_echo = measure_keystroke_bursts(INTERACTIVE) * 1e3
    print(f"   stock variant (Nagle on)        : {stock_echo:8.2f} ms/burst")
    print(f"   interactive variant (Nagle off) : {fast_echo:8.2f} ms/burst")
    print(f"   -> {stock_echo / fast_echo:.1f}x faster echoes\n")

    print("2. bulk transfer over a 2%-lossy path:")
    tahoe = measure_lossy_bulk(TAHOE_BULK)
    reno = measure_lossy_bulk(RENO_BULK)
    print(f"   Tahoe variant (collapse on loss): {tahoe:8.2f} Mb/s")
    print(f"   Reno variant (fast recovery)    : {reno:8.2f} Mb/s")
    print(f"   -> {reno / tahoe:.1f}x the throughput\n")

    print("each application simply linked a differently-tuned library —")
    print("no kernel changes, no system-wide policy decision.")


if __name__ == "__main__":
    main()
