#!/usr/bin/env python3
"""Watch the library TCP's congestion control react to loss.

The user-level library runs the same 4.3BSD-era algorithms the paper's
borrowed stack had — slow start, congestion avoidance, fast retransmit
— and because the library lives in the application's address space, the
application can simply *look at* the transmission control block while
it runs (one of the paper's arguments for user-level protocols:
visibility and debuggability).

This example samples cwnd during a transfer over a lossy Ethernet and
renders the sawtooth.

Run:  python examples/congestion_trace.py
"""

from repro.net.faults import FaultInjector
from repro.protocols.tcp import TcpConfig
from repro.testbed import IP_B, Testbed

TOTAL = 600_000
BAR = "#"


def main() -> None:
    faults = FaultInjector(drop_rate=0.02, seed=11)
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        faults=faults,
        config=TcpConfig(min_rto=0.3, initial_rto=0.6),
    )
    sim = testbed.sim
    samples = []
    state = {}

    def receiver():
        listener = yield from testbed.service_b.listen(9000)
        conn = yield from listener.accept()
        received = 0
        while received < TOTAL:
            data = yield from conn.recv(65536)
            if not data:
                break
            received += len(data)
        state["done"] = sim.now

    def sender():
        conn = yield from testbed.service_a.connect(IP_B, 9000)
        state["tcb"] = conn.runner.machine.tcb
        state["stats"] = conn.runner.machine.stats
        payload = bytes(256) * 16
        sent = 0
        while sent < TOTAL:
            yield from conn.send(payload)
            sent += len(payload)
        yield from conn.close()

    def sampler():
        while "done" not in state:
            yield sim.timeout(0.02)
            if "tcb" in state:
                samples.append((sim.now, state["tcb"].cc.cwnd,
                                state["tcb"].cc.ssthresh))

    testbed.spawn(receiver(), name="rx")
    testbed.spawn(sender(), name="tx")
    sampler_proc = testbed.spawn(sampler(), name="sampler")
    testbed.run(until=sampler_proc)

    print(f"transferred {TOTAL} bytes in {state['done']:.2f} simulated s "
          f"with {faults.stats['dropped']} frames dropped\n")
    print("congestion window over time (each row = 20 ms):")
    peak = max(cwnd for _, cwnd, _ in samples)
    for t, cwnd, ssthresh in samples[::3]:
        width = int(cwnd / peak * 60)
        marker = "|" if abs(cwnd - ssthresh) < 1500 else ""
        print(f"  {t:6.2f}s {BAR * width}{marker} {cwnd // 1024} KB")
    stats = state["stats"]
    print(f"\nretransmits: {stats['retransmits']} "
          f"(fast: {stats['fast_retransmits']}), "
          f"dup ACKs seen: {stats['dup_acks_received']}")
    print("the sawtooth is Reno: loss -> fast retransmit -> half the "
          "window -> additive increase.")


if __name__ == "__main__":
    main()
