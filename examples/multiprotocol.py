#!/usr/bin/env python3
"""Multiple protocols co-existing — the paper's core motivation.

§1.1: "In systems that need to support both throughput-intensive and
latency-critical applications, it is realistic to expect both types of
protocols to co-exist."

This example runs, simultaneously on the same two hosts:

* a throughput-intensive TCP bulk transfer through the user-level TCP
  library, and
* a latency-critical request/response protocol (VMTP-flavoured) built
  directly on the UDP library — no connection setup, no byte-stream
  machinery, just a request datagram and a response datagram.

The request/response exchanges complete in a fraction of the TCP
round-trip time while the bulk transfer saturates the link — exactly
the co-existence story.

Run:  python examples/multiprotocol.py
"""

from repro.net.headers import PROTO_UDP
from repro.protocols.udp import decode_datagram, encode_datagram
from repro.testbed import IP_A, IP_B, Testbed

RR_PORT = 3000
BULK_PORT = 3001
BULK_BYTES = 300_000


class RequestResponseClient:
    """A minimal VMTP-style request/response transport over UDP.

    Each request carries a transaction id; the response echoes it.
    Retransmission on timeout gives at-least-once semantics — the
    'specialized protocols [that] achieve remarkably low latencies'
    the paper contrasts with byte-stream transports.
    """

    def __init__(self, testbed, host, port=RR_PORT):
        self.testbed = testbed
        self.host = host
        self.port = host.udp_ports.bind(0, self._on_response)
        self._waiting = {}
        self._next_tid = 1

    def _on_response(self, datagram):
        tid = int.from_bytes(datagram.payload[:4], "big")
        event = self._waiting.pop(tid, None)
        if event is not None:
            event.succeed(datagram.payload[4:])

    def call(self, server_ip, request: bytes, timeout=0.5):
        """Generator: one remote call, with retransmission."""
        tid = self._next_tid
        self._next_tid += 1
        wire = encode_datagram(
            self.port, RR_PORT,
            tid.to_bytes(4, "big") + request,
            self.host.ip, server_ip,
        )
        for _ in range(5):
            event = self.testbed.sim.event()
            self._waiting[tid] = event
            yield from self.host.ip_send(server_ip, PROTO_UDP, wire)
            expiry = self.testbed.sim.timeout(timeout)
            result = yield self.testbed.sim.any_of([event, expiry])
            if event in result:
                return result[event]
            self._waiting.pop(tid, None)  # Timed out; retransmit.
        raise TimeoutError(f"request {tid} got no response")


def rr_server(testbed, host):
    """Server side: answer each request datagram with a response."""

    def on_request(datagram):
        tid, body = datagram.payload[:4], datagram.payload[4:]
        reply = encode_datagram(
            RR_PORT, datagram.src_port,
            tid + b"answered:" + body,
            host.ip, datagram.src_ip,
        )
        testbed.spawn(
            host.ip_send(datagram.src_ip, PROTO_UDP, reply), name="rr-reply"
        )

    host.udp_ports.bind(RR_PORT, on_request)


def main() -> None:
    testbed = Testbed(network="ethernet", organization="userlib")
    sim = testbed.sim
    rr_server(testbed, testbed.host_b)
    rr_client = RequestResponseClient(testbed, testbed.host_a)
    stats = {"rr_times": [], "bulk_done": None}

    def bulk_receiver():
        listener = yield from testbed.service_b.listen(BULK_PORT)
        conn = yield from listener.accept()
        received = 0
        while received < BULK_BYTES:
            data = yield from conn.recv(65536)
            if not data:
                break
            received += len(data)
        stats["bulk_done"] = sim.now

    def bulk_sender():
        conn = yield from testbed.service_a.connect(IP_B, BULK_PORT)
        payload = bytes(range(256)) * 16
        sent = 0
        while sent < BULK_BYTES:
            yield from conn.send(payload)
            sent += len(payload)
        yield from conn.close()

    def latency_client():
        # Fire request/response calls *while* the bulk transfer runs.
        yield sim.timeout(0.05)
        for i in range(10):
            start = sim.now
            reply = yield from rr_client.call(IP_B, f"req-{i}".encode())
            stats["rr_times"].append(sim.now - start)
            assert reply == f"answered:req-{i}".encode()
            yield sim.timeout(0.02)

    testbed.spawn(bulk_receiver(), name="bulk-rx")
    testbed.spawn(bulk_sender(), name="bulk-tx")
    rr_done = testbed.spawn(latency_client(), name="rr")
    testbed.run(until=rr_done)
    testbed.run(until=sim.now + 2.0)

    bulk_mbps = BULK_BYTES * 8 / stats["bulk_done"] / 1e6
    rr_mean = sum(stats["rr_times"]) / len(stats["rr_times"])
    print(f"bulk TCP transfer  : {BULK_BYTES} bytes, {bulk_mbps:.2f} Mb/s "
          "(incl. setup)")
    print(f"request/response   : {len(stats['rr_times'])} calls under load, "
          f"mean {rr_mean * 1e3:.2f} ms per call")
    print()
    print("both transports shared the same hosts, links, and network I/O")
    print("modules — the byte-stream library and the request/response")
    print("protocol co-existing, each doing what it is best at.")


if __name__ == "__main__":
    main()
