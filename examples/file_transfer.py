#!/usr/bin/env python3
"""Bulk file transfer across every protocol organization — a miniature
of the paper's Table 2.

Transfers one "file" over TCP under each organization and network and
prints the throughput plus the address-space crossings that explain it.

Run:  python examples/file_transfer.py [--bytes 400000] [--chunk 4096]
"""

import argparse

from repro.metrics import measure_throughput
from repro.testbed import ORGANIZATIONS, Testbed

DESCRIPTIONS = {
    "ultrix": "monolithic in-kernel (Ultrix-style)",
    "mach-ux": "single trusted server, mapped device (Mach/UX-style)",
    "mach-ux-unmapped": "single server, in-kernel device via messages",
    "dedicated": "dedicated protocol + device servers (the rare case)",
    "userlib": "user-level protocol library (the paper's proposal)",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=400_000)
    parser.add_argument("--chunk", type=int, default=4096)
    args = parser.parse_args()

    for network in ("ethernet", "an1"):
        label = "10 Mb/s Ethernet" if network == "ethernet" else "100 Mb/s AN1"
        print(f"\n=== {label}, {args.bytes} bytes in {args.chunk}-byte writes ===")
        for organization in ORGANIZATIONS:
            testbed = Testbed(network=network, organization=organization)
            result = measure_throughput(
                testbed, total_bytes=args.bytes, chunk_size=args.chunk
            )
            counters = testbed.host_a.kernel.counters
            crossings = (
                f"ipc={counters.get('ipc_messages', 0):4d} "
                f"traps={counters.get('traps', 0):4d} "
                f"fast-traps={counters.get('fast_traps', 0):4d}"
            )
            print(
                f"  {organization:18s} {result.throughput_mbps:6.2f} Mb/s"
                f"   [{crossings}]  {DESCRIPTIONS[organization]}"
            )


if __name__ == "__main__":
    main()
