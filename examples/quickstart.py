#!/usr/bin/env python3
"""Quickstart: a TCP echo service over the user-level protocol library.

Builds the paper's testbed — two simulated DECstations on a 10 Mb/s
Ethernet — with the user-level library organization: each application
links the TCP/IP library, connection setup goes through the registry
server, and data flows through protected network-I/O-module channels.

Run:  python examples/quickstart.py
"""

from repro.net.headers import ip_to_str
from repro.sockets import socket
from repro.testbed import IP_B, Testbed


def main() -> None:
    testbed = Testbed(network="ethernet", organization="userlib")
    sim = testbed.sim

    def server():
        sock = socket(testbed.service_b)
        sock.bind(7)  # The echo port.
        yield from sock.listen()
        print(f"[{sim.now * 1e3:7.2f} ms] server: listening on port 7")
        child = yield from sock.accept()
        print(f"[{sim.now * 1e3:7.2f} ms] server: accepted a connection")
        while True:
            data = yield from child.recv(4096)
            if not data:
                break
            yield from child.send(data)
        yield from child.close()
        print(f"[{sim.now * 1e3:7.2f} ms] server: connection closed")

    def client():
        sock = socket(testbed.service_a)
        print(f"[{sim.now * 1e3:7.2f} ms] client: connecting to "
              f"{ip_to_str(IP_B)}:7 ...")
        yield from sock.connect(IP_B, 7)
        print(f"[{sim.now * 1e3:7.2f} ms] client: connected "
              "(three-way handshake ran inside the registry server)")
        for message in (b"hello, user-level TCP!", b"x" * 10_000):
            yield from sock.send(message)
            echo = yield from sock.recv_exactly(len(message))
            assert echo == message
            print(
                f"[{sim.now * 1e3:7.2f} ms] client: echoed "
                f"{len(message)} bytes"
            )
        yield from sock.close()

    testbed.spawn(server(), name="server")
    done = testbed.spawn(client(), name="client")
    testbed.run(until=done)
    testbed.run(until=sim.now + 0.5)  # Let the close handshake drain.

    print()
    print("structural proof that the registry is bypassed on the data path:")
    print(f"  registry segments handled : "
          f"{testbed.registry_a.stats['handshake_segments']} (handshake only)")
    print(f"  channel packets sent      : {testbed.host_a.netio.stats['tx']}")
    print(f"  packets demuxed to channel: "
          f"{testbed.host_b.netio.stats['rx_demuxed']}")


if __name__ == "__main__":
    main()
